"""IsPosRelevant / IsNegRelevant (Algorithms 2 and 3, Proposition 5.7).

For a *polarity-consistent* CQ¬, relevance is decidable in polynomial
time.  Both algorithms scan the (polynomially many) assignments of the
query variables that map every positive atom into the database — i.e. the
homomorphisms of the positive part — and test a canonical subset:

* ``P`` — endogenous facts that are images of positive atoms under ``h``;
* ``N`` — endogenous facts that are images of negative atoms under ``h``;
* the canonical coalition adds *all* endogenous facts of negative-only
  relations except ``N`` (they can only help violate the query), which is
  sound precisely because the query is polarity consistent.

Since for polarity-consistent relations relevance coincides with nonzero
Shapley value, this also decides "is ``Shapley(D, q, f) = 0``" in
polynomial time.
"""

from __future__ import annotations

from repro.core.database import Database
from repro.core.errors import ReproError
from repro.core.evaluation import FactIndex, find_homomorphisms, holds
from repro.core.facts import Fact
from repro.core.query import ConjunctiveQuery
from repro.relevance.polarity import negative_endogenous_facts


class PolarityError(ReproError):
    """Algorithms 2/3 require a polarity-consistent query."""


def _homomorphism_images(
    query: ConjunctiveQuery, database: Database
):
    """Yield ``(P, N, negatives_hit_exogenous)`` per positive-part homomorphism.

    ``P`` / ``N`` are the endogenous images of positive / negative atoms;
    the flag reports whether some negative atom lands on an exogenous fact
    (which disqualifies the assignment in both algorithms).
    """
    positive_part = ConjunctiveQuery(query.positive_atoms, name=query.name)
    index = FactIndex(database.facts)
    for assignment in find_homomorphisms(positive_part, index):
        positives = frozenset(
            atom.substitute(assignment).to_fact() for atom in query.positive_atoms
        )
        negative_images = frozenset(
            atom.substitute(assignment).to_fact() for atom in query.negative_atoms
        )
        p = frozenset(item for item in positives if database.is_endogenous(item))
        n = frozenset(
            item for item in negative_images if database.is_endogenous(item)
        )
        hits_exogenous = any(
            item in database.exogenous for item in negative_images
        )
        yield p, n, hits_exogenous


def _require_polarity_consistent(query: ConjunctiveQuery) -> None:
    if not query.is_polarity_consistent:
        mixed = sorted(
            name for name in query.relation_names if query.polarity(name) == "both"
        )
        raise PolarityError(
            f"Algorithms 2/3 require a polarity-consistent query; relations"
            f" {mixed} occur both positively and negatively"
        )


def is_positively_relevant(
    database: Database, query: ConjunctiveQuery, target: Fact
) -> bool:
    """Algorithm 2: can adding ``target`` flip the query false → true?"""
    query = query.as_boolean()
    _require_polarity_consistent(query)
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    negq = negative_endogenous_facts(query, database)
    exogenous = list(database.exogenous)
    for p, n, hits_exogenous in _homomorphism_images(query, database):
        if hits_exogenous:
            continue
        if target not in p:
            continue
        coalition = (p - {target}) | (negq - n)
        if not holds(query, exogenous + list(coalition)):
            return True
    return False


def is_negatively_relevant(
    database: Database, query: ConjunctiveQuery, target: Fact
) -> bool:
    """Algorithm 3: can adding ``target`` flip the query true → false?"""
    query = query.as_boolean()
    _require_polarity_consistent(query)
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    negq = negative_endogenous_facts(query, database)
    exogenous = list(database.exogenous)
    for p, n, hits_exogenous in _homomorphism_images(query, database):
        if hits_exogenous:
            continue
        if target in p:
            continue
        coalition = p | (negq - n) | {target}
        if not holds(query, exogenous + list(coalition)):
            return True
    return False


def is_relevant(
    database: Database, query: ConjunctiveQuery, target: Fact
) -> bool:
    """Definition 5.2 for polarity-consistent CQ¬s, in polynomial time."""
    return is_positively_relevant(database, query, target) or is_negatively_relevant(
        database, query, target
    )


def is_shapley_zero(
    database: Database, query: ConjunctiveQuery, target: Fact
) -> bool:
    """Decide ``Shapley(D, q, f) = 0`` via relevance (Proposition 5.7).

    Valid because in a polarity-consistent query every fact is polarity
    consistent, so relevance coincides with nonzero Shapley value.
    """
    return not is_relevant(database, query, target)

"""Serialization: databases to/from JSON, CNF to/from DIMACS.

The JSON layout is deliberately simple::

    {
      "endogenous": [["Reg", ["Adam", "OS"]], ...],
      "exogenous":  [["Stud", ["Adam"]], ...]
    }

Constants round-trip as JSON scalars (strings, ints, floats, bools).
DIMACS follows the standard ``p cnf`` header convention, so formulas can
be exchanged with external SAT tooling.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.database import Database
from repro.core.facts import Fact
from repro.logic.cnf import Clause, CnfFormula


def write_json_atomic(path: Path, payload: Any) -> bool:
    """Write ``payload`` as compact JSON to ``path`` atomically.

    The document is written to a temporary file in the same directory and
    ``os.replace``-d into place, so concurrent readers and writers only
    ever observe complete documents.  Returns False (after cleaning up
    the temporary file) instead of raising on I/O errors — callers such
    as the engine's persistent result cache treat a failed write as a
    skipped cache entry, never as a failed computation.
    """
    try:
        descriptor, temp_name = tempfile.mkstemp(
            prefix=f".{path.stem}.", suffix=".tmp", dir=path.parent
        )
    except OSError:
        # The directory itself is gone or unwritable — same contract as a
        # failed write: report a skipped entry, never raise.
        return False
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(temp_name, path)
    except OSError:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        return False
    return True


# ----------------------------------------------------------------------
# Facts <-> JSON rows
# ----------------------------------------------------------------------
JSON_SCALARS = (str, int, float, bool, type(None))


def fact_to_row(item: Fact) -> list[Any]:
    """The ``[relation, [args...]]`` row of one fact.

    Shared by the database layout below and the engine's persistent
    result cache (:mod:`repro.engine.persistent`), so both speak the same
    on-disk dialect.
    """
    return [item.relation, list(item.args)]


def fact_from_row(row: list[Any]) -> Fact:
    """Rebuild a fact from :func:`fact_to_row` output."""
    relation, args = row
    return Fact(relation, tuple(args))


def fact_is_json_safe(item: Fact) -> bool:
    """Do all constants of ``item`` round-trip through JSON scalars?"""
    return all(isinstance(arg, JSON_SCALARS) for arg in item.args)


# ----------------------------------------------------------------------
# Databases <-> JSON
# ----------------------------------------------------------------------
def database_to_dict(database: Database) -> dict[str, Any]:
    """A JSON-ready dictionary of the database."""

    def rows(facts) -> list[list[Any]]:
        return [fact_to_row(item) for item in sorted(facts, key=repr)]

    return {
        "endogenous": rows(database.endogenous),
        "exogenous": rows(database.exogenous),
    }


def database_from_dict(payload: dict[str, Any]) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    db = Database()
    for key, endogenous in (("exogenous", False), ("endogenous", True)):
        for entry in payload.get(key, []):
            db.add(fact_from_row(entry), endogenous=endogenous)
    return db


def save_database(database: Database, path: str | Path) -> None:
    Path(path).write_text(json.dumps(database_to_dict(database), indent=2))


def load_database(path: str | Path) -> Database:
    return database_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# CNF <-> DIMACS
# ----------------------------------------------------------------------
def formula_to_dimacs(formula: CnfFormula) -> str:
    """Serialize to the standard DIMACS CNF format."""
    lines = [f"p cnf {formula.num_variables} {len(formula.clauses)}"]
    for clause in formula.clauses:
        lines.append(" ".join(str(literal) for literal in clause.literals) + " 0")
    return "\n".join(lines) + "\n"


def formula_from_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF (comments and the problem line are skipped)."""
    clauses: list[Clause] = []
    pending: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("c", "p", "%")):
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                if pending:
                    clauses.append(Clause(tuple(pending)))
                    pending = []
            else:
                pending.append(literal)
    if pending:
        clauses.append(Clause(tuple(pending)))
    return CnfFormula(tuple(clauses))


def save_formula(formula: CnfFormula, path: str | Path) -> None:
    Path(path).write_text(formula_to_dimacs(formula))


def load_formula(path: str | Path) -> CnfFormula:
    return formula_from_dimacs(Path(path).read_text())

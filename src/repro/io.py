"""Serialization: databases to/from JSON, CNF to/from DIMACS, results to/from JSON.

The JSON layout is deliberately simple::

    {
      "endogenous": [["Reg", ["Adam", "OS"]], ...],
      "exogenous":  [["Stud", ["Adam"]], ...]
    }

Constants round-trip as JSON scalars (strings, ints, floats, bools).
DIMACS follows the standard ``p cnf`` header convention, so formulas can
be exchanged with external SAT tooling.

Attribution results serialize as rows of ``[relation, [args...],
numerator, denominator]`` with the numerator/denominator as *strings* —
exact ``Fraction`` arithmetic routinely produces integers beyond every
fixed-width range, so nothing here ever goes through a float.  These
helpers are the one dialect shared by the engine's persistent result
cache (:mod:`repro.engine.persistent`), the attribution service's wire
protocol (:mod:`repro.server.protocol`), and the CLI's ``--json`` output,
so a document produced by any of them is readable by all of them.
Sampled results additionally carry an ``estimate`` block (their
``(epsilon, delta)`` accuracy contract, round counts, and resumable
state handle) so an estimate can never masquerade as an exact answer
after a round-trip.
"""

from __future__ import annotations

import json
import os
import tempfile
from fractions import Fraction
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.database import Database
from repro.core.facts import Fact
from repro.core.query import ConjunctiveQuery, Variable
from repro.logic.cnf import Clause, CnfFormula

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.results import AttributionEstimate, BatchResult


def write_json_atomic(
    path: Path, payload: Any, indent: int | None = None
) -> bool:
    """Write ``payload`` as JSON to ``path`` atomically.

    The document is written to a temporary file in the same directory and
    ``os.replace``-d into place, so concurrent readers and writers only
    ever observe complete documents.  Returns False (after cleaning up
    the temporary file) instead of raising on I/O errors — callers such
    as the engine's persistent result cache treat a failed write as a
    skipped cache entry, never as a failed computation; callers that
    must not fail silently (e.g. an explicit trace export) raise on a
    False return.  ``indent=None`` writes the compact separators form;
    an integer pretty-prints for human-facing documents.
    """
    try:
        descriptor, temp_name = tempfile.mkstemp(
            prefix=f".{path.stem}.", suffix=".tmp", dir=path.parent
        )
    except OSError:
        # The directory itself is gone or unwritable — same contract as a
        # failed write: report a skipped entry, never raise.
        return False
    try:
        with os.fdopen(descriptor, "w") as handle:
            if indent is None:
                json.dump(payload, handle, separators=(",", ":"))
            else:
                json.dump(payload, handle, indent=indent, sort_keys=True)
                handle.write("\n")
        os.replace(temp_name, path)
    except OSError:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        return False
    return True


# ----------------------------------------------------------------------
# Facts <-> JSON rows
# ----------------------------------------------------------------------
JSON_SCALARS = (str, int, float, bool, type(None))


def fact_to_row(item: Fact) -> list[Any]:
    """The ``[relation, [args...]]`` row of one fact.

    Shared by the database layout below and the engine's persistent
    result cache (:mod:`repro.engine.persistent`), so both speak the same
    on-disk dialect.
    """
    return [item.relation, list(item.args)]


def fact_from_row(row: list[Any]) -> Fact:
    """Rebuild a fact from :func:`fact_to_row` output."""
    relation, args = row
    return Fact(relation, tuple(args))


def fact_is_json_safe(item: Fact) -> bool:
    """Do all constants of ``item`` round-trip through JSON scalars?"""
    return all(isinstance(arg, JSON_SCALARS) for arg in item.args)


# ----------------------------------------------------------------------
# Attribution values <-> JSON rows
# ----------------------------------------------------------------------
def fraction_to_pair(value: Fraction) -> list[str]:
    """``[numerator, denominator]`` as decimal strings — exact at any size."""
    return [str(value.numerator), str(value.denominator)]


def fraction_from_pair(pair: list) -> Fraction:
    """Rebuild a :class:`Fraction` from :func:`fraction_to_pair` output."""
    numerator, denominator = pair
    return Fraction(int(numerator), int(denominator))


def attribution_to_rows(values: Mapping[Fact, Fraction]) -> list[list[Any]] | None:
    """``[[relation, [args...], numerator, denominator], ...]`` or None.

    Rows iterate facts in the canonical sorted-by-``repr`` order.  Returns
    None when some constant is not a JSON scalar (such facts would not
    round-trip); callers decide whether that means "skip the cache entry"
    (the persistent store) or "reject the request" (the wire protocol).
    """
    rows = []
    for item in sorted(values, key=repr):
        if not fact_is_json_safe(item):
            return None
        rows.append(fact_to_row(item) + fraction_to_pair(values[item]))
    return rows


def attribution_from_rows(rows: list[list[Any]]) -> dict[Fact, Fraction]:
    """Rebuild a fact-to-value mapping from :func:`attribution_to_rows`."""
    values: dict[Fact, Fraction] = {}
    for relation, args, numerator, denominator in rows:
        values[fact_from_row([relation, args])] = fraction_from_pair(
            [numerator, denominator]
        )
    return values


def estimate_to_dict(estimate: "AttributionEstimate") -> dict[str, Any]:
    """A JSON-ready document of one sampled result's accuracy metadata.

    ``epsilon``/``delta`` travel as floats (JSON preserves the exact
    double), the round/permutation counters as ints, and the resumable
    ``state_digest`` handle as a string or null.
    """
    return {
        "epsilon": estimate.epsilon,
        "delta": estimate.delta,
        "rounds": estimate.rounds,
        "permutations": estimate.permutations,
        "resumed_rounds": estimate.resumed_rounds,
        "state_digest": estimate.state_digest,
    }


def estimate_from_dict(payload: Mapping[str, Any]) -> "AttributionEstimate":
    """Rebuild an :class:`AttributionEstimate` from :func:`estimate_to_dict`."""
    from repro.engine.results import AttributionEstimate

    return AttributionEstimate(
        epsilon=float(payload["epsilon"]),
        delta=float(payload["delta"]),
        rounds=int(payload["rounds"]),
        permutations=int(payload["permutations"]),
        resumed_rounds=int(payload.get("resumed_rounds", 0)),
        state_digest=payload.get("state_digest"),
    )


def batch_result_to_dict(result: "BatchResult") -> dict[str, Any]:
    """A JSON-ready document of one batch result (both measures).

    Sampled results carry their ``(epsilon, delta)`` accuracy metadata in
    an ``estimate`` block (absent for exact methods), so an estimate is
    never mistaken for an exact answer after a round-trip.  Raises
    :class:`ValueError` when some fact's constants do not round-trip
    through JSON scalars — the wire protocol and ``--json`` must fail
    loudly rather than drop values silently.
    """
    shapley = attribution_to_rows(result.shapley)
    banzhaf = attribution_to_rows(result.banzhaf)
    if shapley is None or banzhaf is None:
        raise ValueError(
            "attribution values contain constants that do not round-trip"
            " through JSON scalars"
        )
    document: dict[str, Any] = {
        "method": result.method,
        "player_count": result.player_count,
        "from_cache": result.from_cache,
        "shapley": shapley,
        "banzhaf": banzhaf,
    }
    if result.estimate is not None:
        document["estimate"] = estimate_to_dict(result.estimate)
    return document


def batch_result_from_dict(payload: Mapping[str, Any]) -> "BatchResult":
    """Rebuild a :class:`BatchResult` from :func:`batch_result_to_dict`."""
    from repro.engine.results import BatchResult

    raw_estimate = payload.get("estimate")
    return BatchResult(
        shapley=attribution_from_rows(payload["shapley"]),
        banzhaf=attribution_from_rows(payload["banzhaf"]),
        method=payload["method"],
        player_count=payload["player_count"],
        from_cache=bool(payload.get("from_cache", False)),
        estimate=None if raw_estimate is None else estimate_from_dict(raw_estimate),
    )


# ----------------------------------------------------------------------
# Queries -> parser-compatible text
# ----------------------------------------------------------------------
def _term_to_text(term: Any) -> str:
    """One term in the grammar of :mod:`repro.core.parser`."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, bool) or not isinstance(term, (int, str)):
        raise ValueError(
            f"constant {term!r} has no textual form in the query grammar"
        )
    if isinstance(term, int):
        return str(term)
    if "'" in term:
        if '"' in term:
            raise ValueError(f"constant {term!r} mixes both quote characters")
        return f'"{term}"'
    return f"'{term}'"


def query_to_text(query: ConjunctiveQuery) -> str:
    """Render a CQ¬ in the datalog dialect :func:`repro.core.parser.parse_query`
    accepts, such that parsing the text rebuilds an equal query.

    This is how query objects travel over the attribution service's wire
    protocol: the daemon re-parses the text, and equality of the dataclass
    (atoms, head, name) guarantees fingerprint equality on both sides.
    """
    head = ", ".join(var.name for var in query.head)
    atoms = []
    for atom in query.atoms:
        terms = ", ".join(_term_to_text(term) for term in atom.terms)
        prefix = "not " if atom.negated else ""
        atoms.append(f"{prefix}{atom.relation}({terms})")
    return f"{query.name}({head}) :- {', '.join(atoms)}"


# ----------------------------------------------------------------------
# Databases <-> JSON
# ----------------------------------------------------------------------
def database_to_dict(database: Database) -> dict[str, Any]:
    """A JSON-ready dictionary of the database."""

    def rows(facts) -> list[list[Any]]:
        return [fact_to_row(item) for item in sorted(facts, key=repr)]

    return {
        "endogenous": rows(database.endogenous),
        "exogenous": rows(database.exogenous),
    }


def database_from_dict(payload: dict[str, Any]) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    db = Database()
    for key, endogenous in (("exogenous", False), ("endogenous", True)):
        for entry in payload.get(key, []):
            db.add(fact_from_row(entry), endogenous=endogenous)
    return db


def save_database(database: Database, path: str | Path) -> None:
    Path(path).write_text(json.dumps(database_to_dict(database), indent=2))


def load_database(path: str | Path) -> Database:
    return database_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# CNF <-> DIMACS
# ----------------------------------------------------------------------
def formula_to_dimacs(formula: CnfFormula) -> str:
    """Serialize to the standard DIMACS CNF format."""
    lines = [f"p cnf {formula.num_variables} {len(formula.clauses)}"]
    for clause in formula.clauses:
        lines.append(" ".join(str(literal) for literal in clause.literals) + " 0")
    return "\n".join(lines) + "\n"


def formula_from_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF (comments and the problem line are skipped)."""
    clauses: list[Clause] = []
    pending: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("c", "p", "%")):
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                if pending:
                    clauses.append(Clause(tuple(pending)))
                    pending = []
            else:
                pending.append(literal)
    if pending:
        clauses.append(Clause(tuple(pending)))
    return CnfFormula(tuple(clauses))


def save_formula(formula: CnfFormula, path: str | Path) -> None:
    Path(path).write_text(formula_to_dimacs(formula))


def load_formula(path: str | Path) -> CnfFormula:
    return formula_from_dimacs(Path(path).read_text())


# ----------------------------------------------------------------------
# Metrics dialect: latency histograms <-> JSON rows
# ----------------------------------------------------------------------
#: Upper bucket bounds (milliseconds) of every latency histogram in the
#: metrics dialect: log-spaced from sub-millisecond warm hits up to
#: minute-scale cold brute force, with ``inf`` as the implicit last
#: bucket.  Fixed bounds (rather than adaptive ones) keep histograms
#: mergeable across operations, daemons, and sessions.
LATENCY_BUCKET_BOUNDS_MS: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 30_000.0, 60_000.0,
)


def histogram_rows(counts: list[int]) -> list[list[Any]]:
    """``[[upper_bound_ms, count], ...]`` rows of one latency histogram.

    ``counts`` has ``len(LATENCY_BUCKET_BOUNDS_MS) + 1`` entries (the
    last is the overflow bucket, serialized with ``null`` as its bound).
    """
    bounds: list[Any] = [*LATENCY_BUCKET_BOUNDS_MS, None]
    return [[bound, count] for bound, count in zip(bounds, counts)]


def histogram_quantile(rows: list[list[Any]], quantile: float) -> float | None:
    """An upper-bound estimate of ``quantile`` from histogram rows.

    Returns the upper bound of the bucket the quantile falls in (the
    conservative read: the true latency is at most this), the largest
    finite bound when it falls in the overflow bucket, and None for an
    empty histogram.  ``quantile`` is a fraction in ``[0, 1]``.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must lie in [0, 1], got {quantile}")
    total = sum(count for _, count in rows)
    if total == 0:
        return None
    rank = quantile * total
    seen = 0
    largest_finite = 0.0
    for bound, count in rows:
        if bound is not None:
            largest_finite = float(bound)
        seen += count
        if seen >= rank and count:
            return float(bound) if bound is not None else largest_finite
    return largest_finite

"""Bounded LRU caches with hit/miss accounting.

The batch engine memoizes expensive intermediate results (per-component
count bundles, whole batch results, residual #SAT component counts) so
that repeated and overlapping requests share work.  Both the engine and
:mod:`repro.logic.counting` use this cache, so it lives in its own
dependency-free module.

Exact rational results make caching semantically safe: a hit returns a
value that is *equal*, not merely approximately equal, to what a fresh
computation would produce.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

Value = TypeVar("Value")


@dataclass
class CacheStats:
    """Mutable hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions)

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses},"
            f" evictions={self.evictions}, hit_rate={self.hit_rate:.2%})"
        )


class LRUCache(Generic[Value]):
    """A bounded mapping with least-recently-used eviction.

    ``maxsize <= 0`` disables storage entirely (every lookup misses),
    which keeps call sites free of ``if cache is not None`` branches.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, Value] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Value | None:
        """The cached value, or None; counts a hit or a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: Hashable) -> Value | None:
        """The cached value without touching recency or the counters.

        Executors use this to decide which plan nodes still need work;
        a peek must not perturb the hit/miss accounting that the actual
        execution will produce.
        """
        return self._entries.get(key)

    def seed(self, key: Hashable, value: Value) -> None:
        """Insert a value computed elsewhere (a worker process), silently.

        Same storage semantics as :meth:`put`; the name marks merge
        points where the value was *not* produced by this process's
        lookup flow, so no hit or miss is recorded.
        """
        self.put(key, value)

    def put(self, key: Hashable, value: Value) -> None:
        if self.maxsize <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Value]) -> Value:
        """Cached value for ``key``, computing and storing it on a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries (the statistics counters are kept)."""
        self._entries.clear()


class BundlePool:
    """A call-scoped, unbounded overlay on top of a backing :class:`LRUCache`.

    The groundings of one non-Boolean query differ only in their head
    constants, so most of their Gaifman components are *identical* across
    answers.  A pool pins every component bundle computed during one
    answer-batch call in an unbounded local dict — immune to LRU eviction
    mid-run — while still reading from and writing through to the backing
    engine cache so the work outlives the call.

    The pool quacks like an :class:`LRUCache` for the single method the
    bundle recursion uses (:meth:`get_or_compute`); ``stats`` counts
    pool-level hits (local *or* backing) and misses.
    """

    def __init__(self, backing: LRUCache) -> None:
        self.backing = backing
        self.stats = CacheStats()
        self._local: dict[Hashable, Value] = {}

    def __len__(self) -> int:
        return len(self._local)

    def peek(self, key: Hashable) -> Value | None:
        """Local or backing value without touching recency or counters."""
        if key in self._local:
            return self._local[key]
        return self.backing.peek(key)

    def seed(self, key: Hashable, value: Value) -> None:
        """Merge a worker-computed bundle: pin locally, write through.

        Like :meth:`get_or_compute`'s miss path but without counting a
        hit or a miss — the sharded executor seeds bundles it shipped to
        worker processes, and only the recursion's own lookups should
        show up in the pool statistics.
        """
        self._local[key] = value
        self.backing.put(key, value)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Value]) -> Value:
        """Local dict first, then the backing cache, then ``compute``."""
        if key in self._local:
            self.stats.hits += 1
            return self._local[key]
        value = self.backing.get(key)
        if value is not None:
            self.stats.hits += 1
            self._local[key] = value
            return value
        self.stats.misses += 1
        value = compute()
        self._local[key] = value
        self.backing.put(key, value)
        return value

"""One-pass per-fact count vectors for hierarchical self-join-free CQ¬s.

The seed pipeline computes ``Shapley(D, q, f)`` fact-at-a-time: two full
CntSat count vectors per endogenous fact, i.e. ``2m`` complete recursions
for ``m`` facts.  This module computes the same information for *all*
facts in a single traversal of the CntSat recursion tree by exploiting
how the count vectors factorize:

* **AND level** (variable-connected components of the Gaifman graph).
  Components touch disjoint relations, hence disjoint fact sets, and
  their count vectors combine by convolution.  Making a fact ``f``
  exogenous or deleting it only changes the vector of *its* component;
  every other component contributes the closed-form convolution term it
  already contributed to the baseline.  With prefix/suffix convolution
  products, the "everything except component j" factor costs O(1)
  convolutions per component instead of a fresh recursion per fact.

* **OR level** (slices of a component by its root variable's value).
  UNSAT vectors of slices convolve; a fact only perturbs its own slice,
  so the same prefix/suffix sharing applies to the UNSAT factors.

* **Ground level.**  Base-case components are tiny (one atom, at most
  one owned fact), so the deletion variant is recomputed directly.

* **With/without sharing.**  The two variants the Lemma 3.2 reduction
  needs per fact — ``f`` moved to the exogenous side (``Sat^{+f}``) and
  ``f`` deleted (``Sat^{-f}``) — satisfy the partition identity

      ``Sat(k + 1) = Sat^{+f}(k) + Sat^{-f}(k + 1)``

  (a ``(k+1)``-subset either contains ``f`` or it does not), so only the
  *deletion* vector is threaded through the recursion and the *with*
  vector is derived from the baseline at the end
  (:func:`derive_with_vector`).  This halves the per-fact convolution
  work at every level of the recursion.

Facts that can never influence satisfaction — facts of relations the
query does not mention, and facts that fail their atom's constant or
repeated-variable pattern — are recognized up front and reported with a
zero delta instead of being dragged through the recursion.

Per-component results are memoized in a caller-supplied
:class:`repro.engine.cache.LRUCache` keyed by
:func:`repro.engine.fingerprint.fingerprint_component`, so overlapping
and repeated requests share sub-results across engine calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.database import Database
from repro.core.errors import NotHierarchicalError, SelfJoinError
from repro.core.facts import Constant, Fact
from repro.core.hierarchy import is_hierarchical
from repro.core.query import Atom, ConjunctiveQuery, Variable
from repro.engine.cache import BundlePool, LRUCache
from repro.engine.fingerprint import fingerprint_component
from repro.util.combinatorics import (
    binomial_vector,
    convolve,
    convolve_many,
    subtract_vectors,
)

# Anything with get_or_compute(key, thunk): an engine LRU or a call-scoped
# pool layered on top of one (cross-grounding sharing in batch_answers).
BundleCache = LRUCache | BundlePool


@dataclass(frozen=True)
class _Scoped:
    """An atom together with the facts still eligible to match it."""

    atom: Atom
    exogenous: frozenset[Fact]
    endogenous: frozenset[Fact]


@dataclass(frozen=True)
class CountBundle:
    """Count vectors of a subproblem, for the baseline and per owned fact.

    ``sat`` has length ``owned + 1``; for every owned fact ``f``,
    ``deltas[f]`` is the *deletion* vector ``Sat^{-f}`` over the remaining
    ``owned - 1`` facts (``f`` removed from the database).  The *with*
    vector ``Sat^{+f}`` is never materialized below the top level: it
    follows from ``sat`` and ``deltas[f]`` via the partition identity of
    :func:`derive_with_vector`.  Facts in ``zero`` provably have
    ``sat_exo == sat_del`` (their Shapley and Banzhaf values vanish) and
    carry no vectors.
    """

    owned: int
    sat: tuple[int, ...]
    deltas: dict[Fact, tuple[int, ...]]
    zero: frozenset[Fact]


def derive_with_vector(
    baseline: Sequence[int], without: Sequence[int]
) -> tuple[int, ...]:
    """``Sat^{+f}`` from the baseline and ``Sat^{-f}`` vectors.

    A ``(k+1)``-subset of the ``n`` facts either contains ``f`` — then its
    other ``k`` elements satisfy the query with ``f`` exogenous — or it
    does not, so ``Sat(k+1) = Sat^{+f}(k) + Sat^{-f}(k+1)``.  ``baseline``
    has length ``n + 1`` and ``without`` length ``n``; the result has
    length ``n`` (one entry per size ``0 .. n-1`` over ``n - 1`` facts).
    """
    length = len(baseline) - 1
    return tuple(
        baseline[k + 1] - (without[k + 1] if k + 1 < len(without) else 0)
        for k in range(length)
    )


@dataclass(frozen=True)
class BatchVectors:
    """Full-database count vectors for every endogenous fact.

    ``baseline[k] == |Sat(D, q, k)|`` (length ``total_players + 1``), and
    ``per_fact[f] == (Sat^{+f}, Sat^{-f})`` over ``Dn ∖ {f}`` (length
    ``total_players``), exactly the two vectors the Lemma 3.2 reduction
    consumes.  ``zero_facts`` hold the facts with identical vectors.
    """

    total_players: int
    baseline: tuple[int, ...]
    per_fact: dict[Fact, tuple[tuple[int, ...], tuple[int, ...]]]
    zero_facts: frozenset[Fact]


def _prefix_suffix(
    vectors: Sequence[Sequence[int]],
) -> tuple[list[list[int]], list[list[int]]]:
    """Prefix and suffix convolution products of ``vectors``.

    ``prefix[i]`` is the product of ``vectors[:i]`` and ``suffix[i]`` the
    product of ``vectors[i:]``; ``convolve(prefix[i], suffix[i + 1])`` is
    then the product of everything except ``vectors[i]``.
    """
    n = len(vectors)
    prefix: list[list[int]] = [[1]]
    for index in range(n):
        prefix.append(convolve(prefix[index], vectors[index]))
    suffix: list[list[int]] = [[1]] * (n + 1)
    for index in range(n - 1, -1, -1):
        suffix[index] = convolve(vectors[index], suffix[index + 1])
    return prefix, suffix


def _components(scope: Sequence[_Scoped]) -> list[list[_Scoped]]:
    """Group scoped atoms into variable-connected components (union-find)."""
    n = len(scope)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner: dict[Variable, int] = {}
    for index, scoped in enumerate(scope):
        for var in scoped.atom.variables:
            if var in owner:
                root_a, root_b = find(owner[var]), find(index)
                if root_a != root_b:
                    parent[root_b] = root_a
            else:
                owner[var] = index
    groups: dict[int, list[_Scoped]] = {}
    for index, scoped in enumerate(scope):
        groups.setdefault(find(index), []).append(scoped)
    return list(groups.values())


def _restricted_components(
    scope: Sequence[_Scoped],
) -> tuple[list[list[_Scoped]], set[Fact]]:
    """Atom-level restriction, then the variable-connected component split.

    Returns the components of the restricted scope together with the
    *free* facts — endogenous facts that fail their atom's constant or
    repeated-variable pattern and can therefore never influence
    satisfaction.  Both the recursion (:func:`_bundle_scope`) and the
    planner (:func:`top_level_components`) go through this helper, so
    the component boundaries — and hence the fingerprint cache keys —
    are identical in both layers by construction.
    """
    free_facts: set[Fact] = set()
    restricted: list[_Scoped] = []
    for scoped in scope:
        matching_exo = frozenset(
            item for item in scoped.exogenous if scoped.atom.matches(item)
        )
        matching_endo = frozenset(
            item for item in scoped.endogenous if scoped.atom.matches(item)
        )
        free_facts |= scoped.endogenous - matching_endo
        restricted.append(_Scoped(scoped.atom, matching_exo, matching_endo))
    return _components(restricted), free_facts


def _bundle_scope(scope: Sequence[_Scoped], cache: BundleCache) -> CountBundle:
    """AND level: restriction, component split, and convolution sharing.

    The prefix/suffix chains exist only to supply the "everything except
    component ``j``" factor of the delta vectors; when no component owns
    a delta (every endogenous fact is provably zero) the chains are
    skipped and the baseline reduces through the balanced product tree
    of :func:`convolve_many` — same integers, half the convolutions.
    """
    components, free_facts = _restricted_components(scope)
    bundles = [_bundle_component(component, cache) for component in components]
    free = len(free_facts)
    free_vector = binomial_vector(free)
    sat_vectors = [bundle.sat for bundle in bundles]
    owned = sum(bundle.owned for bundle in bundles) + free

    deltas: dict[Fact, tuple[int, ...]] = {}
    zero = set(free_facts)
    for bundle in bundles:
        zero |= bundle.zero
    if any(bundle.deltas for bundle in bundles):
        prefix, suffix = _prefix_suffix(sat_vectors)
        sat = tuple(convolve(prefix[len(bundles)], free_vector))
        for j, bundle in enumerate(bundles):
            if not bundle.deltas:
                continue
            rest = convolve(convolve(prefix[j], suffix[j + 1]), free_vector)
            for item, sat_del in bundle.deltas.items():
                deltas[item] = tuple(convolve(sat_del, rest))
    else:
        sat = tuple(convolve(convolve_many(sat_vectors), free_vector))
    return CountBundle(owned, sat, deltas, frozenset(zero))


def _bundle_component(component: list[_Scoped], cache: BundleCache) -> CountBundle:
    """OR level, memoized: slice on the root variable and share UNSAT factors."""
    if not any(scoped.atom.variables for scoped in component):
        # Ground components are cheaper to recompute than to fingerprint.
        return _bundle_ground(component)
    key = fingerprint_component(
        (scoped.atom for scoped in component),
        (item for scoped in component for item in scoped.exogenous),
        (item for scoped in component for item in scoped.endogenous),
    )
    return cache.get_or_compute(key, lambda: _bundle_component_fresh(component, cache))


def _bundle_component_fresh(component: list[_Scoped], cache: BundleCache) -> CountBundle:
    variables = frozenset(var for scoped in component for var in scoped.atom.variables)
    if not variables:
        return _bundle_ground(component)

    roots = None
    for scoped in component:
        atom_vars = scoped.atom.variables
        roots = atom_vars if roots is None else roots & atom_vars
    if not roots:
        raise NotHierarchicalError(
            "connected subquery without a root variable: "
            + ", ".join(repr(scoped.atom) for scoped in component)
        )
    root = min(roots, key=lambda var: var.name)

    positions = [scoped.atom.terms.index(root) for scoped in component]
    candidates: set[Constant] = set()
    for index, scoped in enumerate(component):
        for item in scoped.exogenous | scoped.endogenous:
            candidates.add(item.args[positions[index]])

    total = sum(len(scoped.endogenous) for scoped in component)
    slice_bundles: list[CountBundle] = []
    for value in sorted(candidates, key=repr):
        slice_scope = []
        for index, scoped in enumerate(component):
            at = positions[index]
            slice_scope.append(
                _Scoped(
                    scoped.atom.substitute({root: value}),
                    frozenset(
                        item for item in scoped.exogenous if item.args[at] == value
                    ),
                    frozenset(
                        item for item in scoped.endogenous if item.args[at] == value
                    ),
                )
            )
        slice_bundles.append(_bundle_scope(slice_scope, cache))

    unsat_vectors = [
        subtract_vectors(binomial_vector(bundle.owned), bundle.sat)
        for bundle in slice_bundles
    ]
    deltas: dict[Fact, tuple[int, ...]] = {}
    zero: set[Fact] = set()
    for bundle in slice_bundles:
        zero |= bundle.zero
    if any(bundle.deltas for bundle in slice_bundles):
        # The suffix chain only feeds the per-fact "rest" factors below.
        prefix, suffix = _prefix_suffix(unsat_vectors)
        all_unsat = prefix[len(unsat_vectors)]
        remaining = binomial_vector(total - 1) if total else []
        for b, bundle in enumerate(slice_bundles):
            if not bundle.deltas:
                continue
            rest = convolve(prefix[b], suffix[b + 1])
            slice_players = binomial_vector(bundle.owned - 1)
            for item, sat_del in bundle.deltas.items():
                unsat_del = subtract_vectors(slice_players, sat_del)
                deltas[item] = tuple(
                    subtract_vectors(remaining, convolve(unsat_del, rest))
                )
    else:
        all_unsat = convolve_many(unsat_vectors)
    sat = tuple(subtract_vectors(binomial_vector(total), all_unsat))
    return CountBundle(total, sat, deltas, frozenset(zero))


def _ground_vector(component: list[_Scoped]) -> tuple[int, ...]:
    """Base case of Lemma 3.2: every atom in the component is ground."""
    owned = sum(len(scoped.endogenous) for scoped in component)
    needed = 0
    satisfiable = True
    for scoped in component:
        ground = scoped.atom.to_fact()
        in_exogenous = ground in scoped.exogenous
        in_endogenous = ground in scoped.endogenous
        if not scoped.atom.negated:
            if in_exogenous:
                continue
            if in_endogenous:
                needed += 1
            else:
                satisfiable = False
        elif in_exogenous:
            satisfiable = False
        # An endogenous fact of a ground negated atom must stay out of E:
        # it is owned but never selected.
    vector = [0] * (owned + 1)
    if satisfiable:
        vector[needed] = 1
    return tuple(vector)


def _bundle_ground(component: list[_Scoped]) -> CountBundle:
    """Ground level: recompute the deletion variant per owned fact directly."""
    sat = _ground_vector(component)
    deltas: dict[Fact, tuple[int, ...]] = {}
    for index, scoped in enumerate(component):
        for item in scoped.endogenous:
            del_variant = list(component)
            del_variant[index] = _Scoped(
                scoped.atom,
                scoped.exogenous,
                scoped.endogenous - {item},
            )
            deltas[item] = _ground_vector(del_variant)
    owned = sum(len(scoped.endogenous) for scoped in component)
    return CountBundle(owned, sat, deltas, frozenset())


def _initial_scope(database: Database, query: ConjunctiveQuery) -> list[_Scoped]:
    """The top-level scope: every query atom with its relation's facts."""
    return [
        _Scoped(
            atom,
            frozenset(
                item
                for item in database.relation(atom.relation)
                if database.is_exogenous(item)
            ),
            frozenset(
                item
                for item in database.relation(atom.relation)
                if database.is_endogenous(item)
            ),
        )
        for atom in query.atoms
    ]


def top_level_components(
    database: Database, query: ConjunctiveQuery
) -> list[tuple[tuple, tuple[_Scoped, ...]]]:
    """The memoizable top-level component tasks of ``(D, q)``.

    Returns ``(fingerprint, scoped component)`` pairs for every non-ground
    variable-connected component of the restricted top-level scope — the
    exact subproblems :func:`batch_count_vectors` will look up in its
    bundle cache, under the exact keys it will use (both sides go through
    :func:`_restricted_components` and
    :func:`repro.engine.fingerprint.fingerprint_component`).  The planner
    turns each pair into one bundle node of the work DAG; ground
    components are omitted because the recursion recomputes them inline
    instead of fingerprinting them.
    """
    query = query.as_boolean()
    components, _ = _restricted_components(_initial_scope(database, query))
    tasks: list[tuple[tuple, tuple[_Scoped, ...]]] = []
    for component in components:
        if not any(scoped.atom.variables for scoped in component):
            continue
        key = fingerprint_component(
            (scoped.atom for scoped in component),
            (item for scoped in component for item in scoped.exogenous),
            (item for scoped in component for item in scoped.endogenous),
        )
        tasks.append((key, tuple(component)))
    return tasks


def bundle_for_component(
    component: Sequence[_Scoped], cache: BundleCache | None = None
) -> CountBundle:
    """Compute one component's :class:`CountBundle` (a bundle plan node).

    This is the executable payload of a bundle task: worker processes
    call it with a fresh local cache (sub-slices still share within the
    component), the serial path hits it implicitly through the recursion.
    """
    if cache is None:
        cache = LRUCache(128)
    return _bundle_component(list(component), cache)


def batch_count_vectors(
    database: Database,
    query: ConjunctiveQuery,
    cache: BundleCache | None = None,
) -> BatchVectors:
    """All Lemma 3.2 count vectors of ``(D, q)`` in one shared recursion.

    Raises :class:`SelfJoinError` / :class:`NotHierarchicalError` outside
    the tractable class of Theorem 3.1, exactly like
    :func:`repro.shapley.cntsat.count_satisfying_subsets`.
    """
    query = query.as_boolean()
    if not query.is_self_join_free:
        raise SelfJoinError(
            f"the batch engine requires a self-join-free query, got {query!r}"
        )
    if not is_hierarchical(query):
        raise NotHierarchicalError(
            f"the batch engine requires a hierarchical query, got {query!r}"
        )
    if cache is None:
        cache = LRUCache(0)

    bundle = _bundle_scope(_initial_scope(database, query), cache)

    query_relations = query.relation_names
    unused = frozenset(
        item for item in database.endogenous if item.relation not in query_relations
    )
    outside = binomial_vector(len(unused))
    total = len(database.endogenous)
    baseline = tuple(convolve(bundle.sat, outside))
    assert len(baseline) == total + 1, (len(baseline), total + 1)

    per_fact = {}
    for item, sat_del in bundle.deltas.items():
        without = tuple(convolve(sat_del, outside))
        per_fact[item] = (derive_with_vector(baseline, without), without)
    zero_facts = bundle.zero | unused
    assert len(per_fact) + len(zero_facts) == total
    return BatchVectors(total, baseline, per_fact, zero_facts)

"""Persistent on-disk result cache: warm attribution across processes.

The engine's in-memory LRU caches die with the process, which makes every
new worker pay the full recursion cost for requests the fleet has already
answered.  This module stores whole :class:`~repro.engine.core.BatchResult`
values — and, since the approximation tier, the resumable
:class:`~repro.shapley.sampling.SampleState` behind sampled results — on
disk, keyed by a SHA-256 digest of the canonical request fingerprint
(:mod:`repro.engine.fingerprint`), so a process can serve warm results
computed by another process — the multi-process serving step of the
ROADMAP north star.

Design points:

* **Keys** are the same fingerprint tuples the in-memory result cache
  uses (including the grounding component for answer requests), encoded
  canonically with per-value type tags and hashed; alpha-equivalent
  requests share an entry, type-punned constants (``1`` vs ``True``)
  never do.
* **Values** are versioned JSON documents; a version bump invalidates old
  entries by changing the directory name, so formats never mix.
* **Writes are atomic**: each entry is written to a temporary file in the
  same directory and ``os.replace``-d into place, so concurrent readers
  and writers only ever observe complete documents.
* **Best effort**: corrupt, unreadable, or mismatched entries count as
  misses; facts whose constants do not round-trip through JSON scalars
  are simply not persisted.  The cache never changes a result, only its
  cost.
* **Bounded (optionally)**: ``max_entries`` / ``max_bytes`` cap the
  directory size with least-recently-used eviction.  Each hit bumps the
  entry's access stamp (its mtime), each write enforces the caps by
  unlinking the stalest entries; both are best effort and never break a
  concurrent reader, which at worst misses and recomputes.
* **Version-aware**: entries record the database version (full-database
  fingerprint digest) that wrote them; :meth:`PersistentResultCache.retire`
  back-dates a superseded version's entries so they are evicted *first*
  under ``max_entries``/``max_bytes`` pressure — live-version hot
  entries are never pushed out by stale ones.  An entry that is still
  valid across the update (the relevance-scoped keys of
  :mod:`repro.engine.fingerprint` survive irrelevant deltas) re-earns
  its stamp on its next hit.

Usage::

    from repro.engine import BatchAttributionEngine, PersistentResultCache

    engine = BatchAttributionEngine(persistent=PersistentResultCache("cache/"))
    engine.batch(db, q)      # cold: computes, writes cache/v1/<digest>.json
    # ... a different process, same cache dir:
    engine.batch(db, q)      # warm: served from disk, zero recursions

or from the CLI: ``python -m repro batch db.json QUERY --cache-dir cache/``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.core.facts import Fact
from repro.engine.cache import CacheStats
from repro.engine.results import BatchResult
from repro.obs import tracing as _tracing
from repro.io import (
    attribution_from_rows,
    attribution_to_rows,
    estimate_from_dict,
    estimate_to_dict,
    fact_from_row,
    fact_is_json_safe,
    fact_to_row,
    write_json_atomic,
)
from repro.shapley.sampling import SampleState

#: Bumped to 3 with the approximation tier: payloads are discriminated
#: by ``kind`` — ``"result"`` documents (optionally carrying a sampled
#: result's ``estimate`` block) and ``"sample-state"`` documents (the
#: resumable permutation-stream state behind anytime refinement).
FORMAT_VERSION = 3

#: Access stamp given to retired (superseded-version) entries: far in
#: the past, so LRU eviction drains them before any live entry.
RETIRED_STAMP = 1.0


def _encode(obj: Any) -> Any:
    """Canonical JSON-able encoding of a fingerprint tuple tree.

    Every value carries a type tag so that Python values that compare
    equal across types (``1 == True == 1.0``) produce distinct digests.
    """
    if isinstance(obj, tuple):
        return ["tuple", [_encode(item) for item in obj]]
    if isinstance(obj, Fact):
        return ["fact", obj.relation, [_encode(arg) for arg in obj.args]]
    if isinstance(obj, bool):
        return ["bool", obj]
    if isinstance(obj, int):
        return ["int", str(obj)]
    if isinstance(obj, float):
        return ["float", repr(obj)]
    if isinstance(obj, str):
        return ["str", obj]
    if obj is None:
        return ["none"]
    # Exotic hashable constants: fall back to their type and repr.
    return ["repr", type(obj).__name__, repr(obj)]


def digest_key(key: tuple) -> str:
    """Stable SHA-256 hex digest of a request fingerprint tuple."""
    rendered = json.dumps(_encode(key), separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def encode_stored_value(value: "BatchResult | SampleState") -> dict | None:
    """The versioned JSON payload for one stored value, or None.

    The single encode dialect behind every durable result tier — this
    module's JSON-file cache and the SQLite shared store of
    :mod:`repro.engine.sqlite_store` — so a value round-trips
    bit-identically no matter which tier wrote or served it.  ``None``
    means some constant in the value does not survive JSON (the entry is
    simply not persisted).
    """
    if isinstance(value, SampleState):
        payload = PersistentResultCache._encode_state(value)
    else:
        payload = PersistentResultCache._encode_result(value)
    if payload is not None:
        payload["version"] = FORMAT_VERSION
    return payload


def decode_stored_value(payload: dict) -> "BatchResult | SampleState":
    """Decode a payload produced by :func:`encode_stored_value`.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed or
    version-mismatched documents; durable tiers treat those as misses.
    """
    if not isinstance(payload, dict) or payload.get("version") != FORMAT_VERSION:
        raise ValueError("unsupported stored-value document")
    return PersistentResultCache._decode_payload(payload)


class PersistentResultCache:
    """An on-disk cache of :class:`BatchResult` values, safe across processes.

    Entries live under ``directory/v{FORMAT_VERSION}/<digest>.json``; the
    versioned subdirectory means a format change can never misparse old
    entries.  ``stats`` counts hits and misses exactly like the in-memory
    caches (corrupt or unreadable entries are misses, evictions count as
    evictions).

    ``max_entries`` / ``max_bytes`` bound the cache (``None`` = unbounded,
    the historical default): after every write the least-recently-used
    entries — by access stamp, i.e. file mtime, which :meth:`get` bumps
    on every hit — are evicted until both caps hold again.
    """

    def __init__(
        self,
        directory: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.root = Path(directory)
        self.directory = self.root / f"v{FORMAT_VERSION}"
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        # The database version (full-database fingerprint digest) whose
        # results are currently being written; the engine sets this per
        # execution so :meth:`retire` can target a superseded version.
        self.writer_version: str | None = None
        # Approximate occupancy, maintained incrementally so a bounded
        # cache does not pay a full directory scan on every write; a real
        # scan re-syncs them whenever a cap is (apparently) crossed.
        self._approx_entries: int | None = None
        self._approx_bytes = 0

    def _path(self, key: tuple) -> Path:
        return self.directory / f"{digest_key(key)}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def get(self, key: tuple) -> BatchResult | SampleState | None:
        """The cached value for ``key``, or None (counts a hit or a miss).

        Returns a :class:`BatchResult` for ``"result"`` entries and a
        :class:`SampleState` for ``"sample-state"`` entries; the caller's
        key discipline (result keys vs the ``("sample-state", ...)`` keys
        of :func:`repro.engine.fingerprint.fingerprint_sample_state`)
        keeps the two from ever being confused.
        """
        if _tracing.ACTIVE is None:
            return self._get(key)
        with _tracing.ACTIVE.span("store.get", tier="persistent") as span:
            value = self._get(key)
            span.set("hit", value is not None)
            return value

    def _get(self, key: tuple) -> BatchResult | SampleState | None:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("version") != FORMAT_VERSION:
            self.stats.misses += 1
            return None
        try:
            value = self._decode_payload(payload)
        except (KeyError, TypeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        try:
            # Bump the access stamp so LRU eviction spares warm entries.
            os.utime(path)
        except OSError:
            pass
        return value

    @staticmethod
    def _decode_payload(payload: dict) -> BatchResult | SampleState:
        kind = payload.get("kind", "result")
        if kind == "sample-state":
            return SampleState(
                seed=int(payload["seed"]),
                rounds=int(payload["rounds"]),
                totals={
                    fact_from_row([relation, args]): int(total)
                    for relation, args, total in payload["totals"]
                },
                evaluations=int(payload["evaluations"]),
                # Entries written before stratified rounds carry no
                # "strata" key; they are plain (strata=1) states.
                strata=int(payload.get("strata", 1)),
            )
        if kind != "result":
            raise ValueError(f"unknown payload kind {kind!r}")
        raw_estimate = payload.get("estimate")
        return BatchResult(
            shapley=attribution_from_rows(payload["shapley"]),
            banzhaf=attribution_from_rows(payload["banzhaf"]),
            method=payload["method"],
            player_count=payload["player_count"],
            estimate=(
                None if raw_estimate is None else estimate_from_dict(raw_estimate)
            ),
        )

    def put(self, key: tuple, result: BatchResult | SampleState) -> bool:
        """Persist ``result`` under ``key`` atomically; False if skipped.

        Row encoding is the shared dialect of
        :func:`repro.io.attribution_to_rows`: None (a non-JSON-safe
        constant somewhere) means the entry is simply not persisted.
        :class:`SampleState` values persist the same way — the resumable
        sampler state survives the process, so a daemon restart or a
        sibling worker resumes the permutation stream instead of
        restarting it.
        """
        with _tracing.maybe_span(_tracing.ACTIVE, "store.put", tier="persistent"):
            return self._put(key, result)

    def _put(self, key: tuple, result: BatchResult | SampleState) -> bool:
        if isinstance(result, SampleState):
            payload = self._encode_state(result)
        else:
            payload = self._encode_result(result)
        if payload is None:
            return False
        payload["version"] = FORMAT_VERSION
        if self.writer_version is not None:
            payload["writer"] = self.writer_version
        path = self._path(key)
        if not write_json_atomic(path, payload):
            return False
        self._note_put(path)
        return True

    @staticmethod
    def _encode_result(result: BatchResult) -> dict | None:
        shapley = attribution_to_rows(result.shapley)
        banzhaf = attribution_to_rows(result.banzhaf)
        if shapley is None or banzhaf is None:
            return None
        payload: dict[str, Any] = {
            "kind": "result",
            "method": result.method,
            "player_count": result.player_count,
            "shapley": shapley,
            "banzhaf": banzhaf,
        }
        if result.estimate is not None:
            payload["estimate"] = estimate_to_dict(result.estimate)
        return payload

    @staticmethod
    def _encode_state(state: SampleState) -> dict | None:
        totals = []
        for player in sorted(state.totals, key=repr):
            if not fact_is_json_safe(player):
                return None
            totals.append(fact_to_row(player) + [state.totals[player]])
        payload: dict[str, Any] = {
            "kind": "sample-state",
            "seed": state.seed,
            "rounds": state.rounds,
            "evaluations": state.evaluations,
            "totals": totals,
        }
        if state.strata != 1:
            # Written only when stratified, so plain states keep the
            # historical byte-for-byte payload (and older readers keep
            # decoding them).
            payload["strata"] = state.strata
        return payload

    def _note_put(self, path: Path) -> None:
        """Update the occupancy estimate; rescan only when a cap is crossed.

        One ``stat`` of the just-written entry per put instead of a full
        directory sweep; overwrites and concurrent evictions only ever
        push the estimate *up*, which at worst triggers an early re-sync.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        if self._approx_entries is None:
            # First bounded write in this process: establish the baseline.
            self._enforce_limits()
            return
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        self._approx_entries += 1
        self._approx_bytes += size
        if (
            self.max_entries is not None and self._approx_entries > self.max_entries
        ) or (self.max_bytes is not None and self._approx_bytes > self.max_bytes):
            self._enforce_limits()

    def _enforce_limits(self) -> None:
        """Evict least-recently-accessed entries until both caps hold.

        Large caps drain to a low-water mark (7/8 of the cap) so the
        scan cost amortizes over many writes; small caps — where a scan
        is cheap anyway — are enforced exactly.  Best effort by design:
        stat/unlink races with concurrent processes (an entry
        disappearing mid-scan) are skipped, never raised — losing an
        eviction round costs disk, not correctness.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        entries = []
        total_bytes = 0
        for path in self.directory.glob("*.json"):
            try:
                status = path.stat()
            except OSError:
                continue
            entries.append((status.st_mtime, path.name, status.st_size, path))
            total_bytes += status.st_size
        entries.sort()
        target_entries = self.max_entries
        if target_entries is not None and target_entries >= 16:
            target_entries -= target_entries // 8
        target_bytes = self.max_bytes
        if target_bytes is not None and target_bytes >= 4096:
            target_bytes -= target_bytes // 8
        # Per-dimension gates: only a cap that was actually crossed drains
        # (to its low-water mark); the other dimension keeps its entries.
        entries_over = self.max_entries is not None and len(entries) > self.max_entries
        bytes_over = self.max_bytes is not None and total_bytes > self.max_bytes
        while entries and (
            (entries_over and len(entries) > target_entries)
            or (bytes_over and total_bytes > target_bytes)
        ):
            _, _, size, path = entries.pop(0)
            try:
                path.unlink()
            except OSError:
                continue
            total_bytes -= size
            self.stats.evictions += 1
        self._approx_entries = len(entries)
        self._approx_bytes = total_bytes

    def retire(self, version: str) -> int:
        """Back-date every entry written by ``version``; returns the count.

        Retired entries keep serving hits (a hit re-bumps their stamp,
        making them live again), but under ``max_entries``/``max_bytes``
        pressure they are the first to go — superseded-version leftovers
        can never push a live version's hot entries out.  Best effort:
        unreadable entries and concurrent unlinks are skipped.

        Each entry is rewritten through :func:`repro.io.write_json_atomic`
        with a durable ``"retired"`` marker before its stamp is
        back-dated: concurrent readers (and a crash mid-retire) only ever
        observe complete documents, and the marker survives anything that
        rewrites mtimes (backup restores, ``cp -r``) — a re-run of
        :meth:`retire` after a crash simply finishes the sweep.
        """
        retired = 0
        for path in self.directory.glob("*.json"):
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict) or payload.get("writer") != version:
                continue
            payload["retired"] = True
            if not write_json_atomic(path, payload):
                continue
            try:
                os.utime(path, (RETIRED_STAMP, RETIRED_STAMP))
            except OSError:
                continue
            retired += 1
        return retired

    def clear(self) -> None:
        """Remove every entry of the current format version."""
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass


__all__ = [
    "FORMAT_VERSION",
    "PersistentResultCache",
    "RETIRED_STAMP",
    "decode_stored_value",
    "digest_key",
    "encode_stored_value",
]

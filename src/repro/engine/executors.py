"""The executor layer: run a plan's nodes, serially or across processes.

An executor consumes a :class:`repro.engine.plan.Plan` and a bundle cache
and produces one :class:`repro.engine.results.BatchResult` per grounding
task.  Two backends implement the protocol:

* :class:`SerialExecutor` — today's semantics, and the default: every
  node runs in-process; bundle nodes are satisfied *lazily* through the
  cache as each grounding task's recursion reaches them, so cache
  accounting is byte-for-byte what the pre-split engine produced.
* :class:`ShardedExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` backend: independent bundle nodes (per-component
  count vectors) and self-contained brute-force grounding nodes are
  shipped to worker processes; finished ``CountBundle``s are merged back
  into the caller's :class:`repro.engine.cache.BundlePool` (``seed``),
  after which the remaining convolution/assembly tasks run in-process and
  hit the pool instead of recursing.  Exact integer count vectors make
  the merge lossless: sharded and serial execution return bit-identical
  ``Fraction`` values.

Worker processes never share state with the parent: each task runs with
a fresh local cache, the pool initializer resets the process-wide default
engine (see :func:`repro.engine.core.reset_default_engine`), and under
the ``spawn`` start method the workers re-import :mod:`repro` from
scratch (the executor pins the package's location into ``PYTHONPATH`` so
spawned children can).  Worker pools are shared per ``(jobs,
start_method)`` across executors and shut down at interpreter exit.

If a pool cannot be created or dies mid-flight (sandboxed environments,
killed workers), the sharded executor degrades to in-process execution —
a correctness-preserving fallback counted in
:attr:`ExecutorStats.fallbacks`.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from fractions import Fraction
from typing import Protocol, runtime_checkable

from repro.engine.bundles import batch_count_vectors, bundle_for_component
from repro.engine.cache import BundlePool, LRUCache
from repro.engine.plan import BundleTask, GroundingTask, Plan
from repro.engine.results import (
    AttributionEstimate,
    BatchResult,
    result_from_vectors,
)
from repro.obs import tracing as _tracing
from repro.shapley.sampling import (
    achieved_epsilon,
    extend_state,
    merge_totals,
    run_rounds,
)

#: Bundle caches executors work against: the engine's component LRU or a
#: call-scoped pool layered on top of it.
BundleCache = LRUCache | BundlePool


@dataclass
class ExecutorStats:
    """Executor accounting: where the plan's nodes actually ran."""

    tasks: int = 0
    bundle_tasks: int = 0
    shipped: int = 0
    fallbacks: int = 0
    processes: int = 1

    def merge(self, other: "ExecutorStats") -> None:
        self.tasks += other.tasks
        self.bundle_tasks += other.bundle_tasks
        self.shipped += other.shipped
        self.fallbacks += other.fallbacks
        self.processes = max(self.processes, other.processes)

    def snapshot(self) -> "ExecutorStats":
        return ExecutorStats(
            self.tasks,
            self.bundle_tasks,
            self.shipped,
            self.fallbacks,
            self.processes,
        )

    def __repr__(self) -> str:
        return (
            f"ExecutorStats(tasks={self.tasks},"
            f" bundle_tasks={self.bundle_tasks}, shipped={self.shipped},"
            f" fallbacks={self.fallbacks}, processes={self.processes})"
        )


@runtime_checkable
class Executor(Protocol):
    """Anything that can run a plan against a bundle cache."""

    jobs: int

    def execute(
        self, plan: Plan, cache: BundleCache
    ) -> tuple[dict[tuple, BatchResult], ExecutorStats]: ...


def execute_grounding_task(task: GroundingTask, cache: BundleCache) -> BatchResult:
    """Run one grounding node: count vectors plus Lemma 3.2 assembly.

    The method was fixed at plan time; this function only executes it.
    For ``cntsat``/``exoshap`` the recursion satisfies the task's bundle
    dependencies through ``cache`` — hitting entries an executor seeded,
    computing (and memoizing) whatever is missing.
    """
    if task.method == "empty":
        return BatchResult({}, {}, "empty", 0)
    if task.method == "inconsistent":
        zeros = {
            item: Fraction(0)
            for item in sorted(task.database.endogenous, key=repr)
        }
        return BatchResult(zeros, dict(zeros), "inconsistent", len(zeros))
    if task.method == "brute-force":
        from repro.shapley.banzhaf import banzhaf_all_brute_force
        from repro.shapley.brute_force import shapley_all_brute_force

        return BatchResult(
            shapley_all_brute_force(task.database, task.query),
            banzhaf_all_brute_force(task.database, task.query),
            "brute-force",
            len(task.database.endogenous),
        )
    if task.method == "sampled":
        return execute_sample_task(task)
    vectors = batch_count_vectors(task.database, task.query, cache)
    return result_from_vectors(vectors, task.method)


def assemble_sample_result(
    task: GroundingTask,
    fresh_totals: dict,
    fresh_evaluations: int,
) -> BatchResult:
    """Fold fresh round totals into the task's prior state and report.

    The per-fact estimate after ``n`` total rounds is ``totals /
    (2 s n)`` (``2 s`` stratified antithetic sweeps per round); the
    reported ``epsilon`` is the bound those ``n`` rounds actually
    achieve, which is at least as tight as the contract.  Banzhaf stays
    empty: the permutation estimator matches Shapley's coalition-size
    distribution only.
    """
    spec = task.sample_spec
    state = extend_state(
        spec.prior,
        spec.seed,
        fresh_totals,
        spec.fresh_rounds,
        fresh_evaluations,
        spec.strata,
    )
    players = sorted(task.database.endogenous, key=repr)
    shapley = {player: state.value_of(player) for player in players}
    estimate = AttributionEstimate(
        epsilon=achieved_epsilon(state.rounds, spec.delta),
        delta=spec.delta,
        rounds=state.rounds,
        permutations=2 * state.strata * state.rounds,
        resumed_rounds=spec.prior.rounds if spec.prior else 0,
        state_digest=spec.state_digest,
    )
    return BatchResult(
        shapley,
        {},
        "sampled",
        len(players),
        estimate=estimate,
        sample_state=state,
    )


def execute_sample_task(task: GroundingTask) -> BatchResult:
    """Run one sampled node in-process: the fresh round suffix, then fold."""
    spec = task.sample_spec
    start = spec.prior.rounds if spec.prior else 0
    totals, evaluations = run_rounds(
        task.database, task.query, spec.seed, start, spec.fresh_rounds, spec.strata
    )
    return assemble_sample_result(task, totals, evaluations)


class SerialExecutor:
    """Run every plan node in-process — the default backend.

    Grounding tasks execute in plan order; bundle nodes are not
    pre-materialized but satisfied lazily by each task's recursion
    through the shared cache, which reproduces the pre-split engine's
    behavior (and its cache hit/miss accounting) exactly.
    """

    jobs = 1

    def execute(
        self, plan: Plan, cache: BundleCache
    ) -> tuple[dict[tuple, BatchResult], ExecutorStats]:
        stats = ExecutorStats(processes=1)
        results: dict[tuple, BatchResult] = {}
        tracer = _tracing.ACTIVE
        for task in plan.tasks:
            with _tracing.maybe_span(
                tracer, f"node:{task.method}", node=_tracing.label(task.node_id)
            ):
                results[task.node_id] = execute_grounding_task(task, cache)
            stats.tasks += 1
        return results, stats

    def __repr__(self) -> str:
        return "SerialExecutor()"


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
def _worker_init() -> None:
    """Start every worker with a clean slate.

    Workers must never reuse (or mutate) an engine inherited from the
    parent: under ``fork`` the process image carries the parent's default
    engine, caches and stats included.  Resetting the singleton makes the
    per-process caches empty and the counters zero, so parent accounting
    is never double-counted.
    """
    from repro.engine.core import reset_default_engine

    reset_default_engine()


def _run_bundle_chunk(
    tasks: list[BundleTask], trace: bool = False
) -> tuple[list[tuple[tuple, object]], dict | None]:
    """Worker payload: a chunk of component bundles, one shared local cache.

    With ``trace`` set, the worker records its own spans (one
    ``node:bundle`` per component, plus whatever the kernels emit) and
    ships them home alongside the results — spans arrive iff results do.
    """
    cache: LRUCache = LRUCache(128)
    tracer = _tracing.Tracer() if trace else None
    out: list[tuple[tuple, object]] = []
    with _tracing.activate(tracer):
        for task in tasks:
            with _tracing.maybe_span(
                tracer, "node:bundle", node=_tracing.label(task.node_id)
            ):
                out.append((task.node_id, bundle_for_component(task.scope, cache)))
    return out, (tracer.shipment() if tracer is not None else None)


def _run_grounding_chunk(
    tasks: list[GroundingTask], trace: bool = False
) -> tuple[list[tuple[tuple, BatchResult]], dict | None]:
    """Worker payload: a chunk of self-contained grounding nodes.

    Chunking matters for more than dispatch overhead: the tasks of one
    answer batch share the same ``Database`` object, and pickling a chunk
    in a single submission serializes that database once (pickle's memo)
    instead of once per grounding.
    """
    cache: LRUCache = LRUCache(64)
    tracer = _tracing.Tracer() if trace else None
    out: list[tuple[tuple, BatchResult]] = []
    with _tracing.activate(tracer):
        for task in tasks:
            with _tracing.maybe_span(
                tracer, f"node:{task.method}", node=_tracing.label(task.node_id)
            ):
                out.append((task.node_id, execute_grounding_task(task, cache)))
    return out, (tracer.shipment() if tracer is not None else None)


def _run_sample_chunk(
    task: GroundingTask, start: int, count: int, trace: bool = False
) -> tuple[tuple, dict, int, dict | None]:
    """Worker payload: one contiguous round range of a sampled node.

    Per-round seeding (:func:`repro.shapley.sampling.round_rng`) makes
    the returned integer totals a pure function of ``(seed, start,
    count)``, so the parent can merge ranges in any completion order
    and still match serial execution bit for bit.  A traced worker ships
    only its ``sampler.round`` span — the node-level ``node:sampled``
    span is emitted once by the parent at assembly time.
    """
    tracer = _tracing.Tracer() if trace else None
    with _tracing.activate(tracer):
        totals, evaluations = run_rounds(
            task.database,
            task.query,
            task.sample_spec.seed,
            start,
            count,
            task.sample_spec.strata,
        )
    return (
        task.node_id,
        totals,
        evaluations,
        tracer.shipment() if tracer is not None else None,
    )


def _round_ranges(start: int, count: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``count`` rounds from ``start`` into up to ``jobs`` ranges."""
    if count <= 0:
        return []
    size = -(-count // jobs)
    ranges = []
    position = start
    end = start + count
    while position < end:
        step = min(size, end - position)
        ranges.append((position, step))
        position += step
    return ranges


def _merge_shipped_trace(
    tracer: "_tracing.Tracer | None",
    at: float | None,
    shipment: dict | None,
    name: str,
) -> None:
    """Fold one worker shipment under a fresh dispatch span.

    The dispatch span covers the submit-to-merge window; the worker's
    own spans land inside it, on a dedicated lane, re-clocked onto the
    parent tracer (see :meth:`repro.obs.tracing.Tracer.merge_shipment`).
    """
    if tracer is None or at is None or shipment is None:
        return
    end = tracer.now()
    lane = tracer.new_lane()
    dispatch = tracer.add_span(
        name,
        at,
        end,
        parent_id=tracer.current_id,
        lane=lane,
        pid=shipment.get("pid"),
    )
    if dispatch is None:
        return
    tracer.merge_shipment(
        shipment, parent_id=dispatch.span_id, at=at, until=end, lane=lane
    )


def _chunked(items: list, jobs: int) -> list[list]:
    """Split work into at most ``4 * jobs`` chunks (load-balance headroom)."""
    if not items:
        return []
    size = max(1, -(-len(items) // (jobs * 4)))
    return [items[index : index + size] for index in range(0, len(items), size)]


# ----------------------------------------------------------------------
# Shared worker pools
# ----------------------------------------------------------------------
_WORKER_POOLS: dict[tuple[int, str | None], ProcessPoolExecutor] = {}
_FINALIZER_REGISTERED = False


def _ensure_child_importable() -> None:
    """Pin :mod:`repro`'s location into ``PYTHONPATH`` for spawned workers.

    ``spawn`` children re-import everything from scratch; when the parent
    found :mod:`repro` through an in-process ``sys.path`` edit (pytest's
    ``pythonpath`` setting, a REPL ``sys.path.insert``), the children
    would not.  Environment variables do survive the spawn, so the
    package's source root is appended there.
    """
    import repro

    source_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH")
    parts = existing.split(os.pathsep) if existing else []
    if source_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([source_root, *parts])


def _worker_pool(jobs: int, start_method: str | None) -> ProcessPoolExecutor:
    """The shared pool for ``(jobs, start_method)``, created on first use.

    Sharing pools across executors (and across the engines holding them)
    bounds the number of worker processes per configuration and amortizes
    the start-method cost — ``spawn`` workers in particular are expensive
    to boot.  Pools are torn down at interpreter exit.
    """
    import multiprocessing
    import multiprocessing.util

    global _FINALIZER_REGISTERED
    key = (jobs, start_method)
    pool = _WORKER_POOLS.get(key)
    if pool is None:
        context = multiprocessing.get_context(start_method)
        if context.get_start_method() != "fork":
            # fork children inherit sys.path by memory image; only the
            # re-importing start methods need the environment pin.
            _ensure_child_importable()
        if not _FINALIZER_REGISTERED:
            # A ``multiprocessing.Process`` child joins its *non-daemon*
            # children (our pool workers) in ``util._exit_function``
            # BEFORE interpreter atexit runs — an atexit-only shutdown
            # would deadlock such a child, its workers blocked on the
            # call queue forever.  A multiprocessing finalizer runs ahead
            # of that join loop.  It must be registered per process and
            # per fork: ``util._after_fork`` clears the registry.
            multiprocessing.util.Finalize(None, shutdown_worker_pools, exitpriority=100)
            _FINALIZER_REGISTERED = True
        pool = ProcessPoolExecutor(
            max_workers=jobs, mp_context=context, initializer=_worker_init
        )
        _WORKER_POOLS[key] = pool
    return pool


def shutdown_worker_pools() -> None:
    """Shut down every shared worker pool (idempotent; used at exit).

    ``wait=True`` lets the workers consume their exit sentinels before
    anything tries to join them; pending-but-unstarted work is cancelled.
    """
    for pool in list(_WORKER_POOLS.values()):
        pool.shutdown(wait=True, cancel_futures=True)
    _WORKER_POOLS.clear()


def _forget_worker_pools() -> None:
    """Drop pool references in a forked child WITHOUT shutting down.

    The executor objects a child inherits manage threads and processes
    that only exist in the *parent*; using them would hang, shutting them
    down would tear down the parent's workers.  Forgetting them makes the
    child's first sharded execute create its own pool (and re-register
    the per-process exit finalizer above).
    """
    global _FINALIZER_REGISTERED
    _WORKER_POOLS.clear()
    _FINALIZER_REGISTERED = False


atexit.register(shutdown_worker_pools)
if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX everywhere we run
    os.register_at_fork(after_in_child=_forget_worker_pools)


class ShardedExecutor:
    """Shard independent plan nodes across a pool of worker processes.

    Two node families are independent by construction and worth a
    process hop: bundle nodes (per-component count vectors, deduplicated
    across groundings by the planner) and brute-force grounding nodes
    (self-contained coalition enumerations).  Everything else — the
    per-grounding convolution and assembly — runs in the parent against
    the merged pool, where it is a cache-hit-driven epilogue.

    ``jobs`` defaults to the machine's CPU count; ``start_method``
    selects the ``multiprocessing`` context (``None`` = platform
    default, ``"fork"``/``"spawn"``/``"forkserver"`` explicit).  Plans
    with fewer than ``min_shard_tasks`` shardable nodes run serially —
    shipping one task buys no wall-clock and costs a pickle round trip.
    """

    def __init__(
        self,
        jobs: int | None = None,
        start_method: str | None = None,
        min_shard_tasks: int = 2,
    ) -> None:
        import multiprocessing

        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        if start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if start_method not in available:
                # Fail at construction, not deep inside the first _ship.
                raise ValueError(
                    f"unknown start method {start_method!r}"
                    f" (available: {', '.join(available)})"
                )
        self.start_method = start_method
        self.min_shard_tasks = min_shard_tasks

    def __repr__(self) -> str:
        method = self.start_method or "default"
        return f"ShardedExecutor(jobs={self.jobs}, start_method={method!r})"

    def execute(
        self, plan: Plan, cache: BundleCache
    ) -> tuple[dict[tuple, BatchResult], ExecutorStats]:
        stats = ExecutorStats(processes=self.jobs)
        results: dict[tuple, BatchResult] = {}
        pending_bundles: list[BundleTask] = []
        remote_tasks: list[GroundingTask] = []
        sample_tasks: list[GroundingTask] = []
        if self.jobs > 1:
            pending_bundles = [
                bundle
                for bundle in plan.bundles.values()
                if cache.peek(bundle.fingerprint) is None
            ]
            remote_tasks = [task for task in plan.tasks if task.method == "brute-force"]
            # A sampled node shards *within itself*: its fresh round
            # range splits into per-worker sub-ranges whose integer
            # totals merge order-independently.
            sample_tasks = [
                task
                for task in plan.tasks
                if task.method == "sampled" and task.sample_spec.fresh_rounds >= 2
            ]
            shardable = (
                len(pending_bundles) + len(remote_tasks) + len(sample_tasks) * self.jobs
            )
            if shardable < self.min_shard_tasks:
                pending_bundles, remote_tasks, sample_tasks = [], [], []
        if pending_bundles or remote_tasks or sample_tasks:
            try:
                self._ship(
                    pending_bundles, remote_tasks, sample_tasks, cache, results, stats
                )
            except (BrokenProcessPool, OSError, pickle.PicklingError):
                # Correctness first: whatever did not come back from the
                # workers is recomputed in-process below.  The pool is
                # shut down, not just forgotten — on a non-fatal error
                # (e.g. an unpicklable payload) its workers are still
                # alive and would otherwise leak until interpreter exit.
                failed = _WORKER_POOLS.pop((self.jobs, self.start_method), None)
                if failed is not None:
                    failed.shutdown(wait=False, cancel_futures=True)
                stats.fallbacks += 1
        tracer = _tracing.ACTIVE
        for task in plan.tasks:
            if task.node_id in results:
                continue
            with _tracing.maybe_span(
                tracer, f"node:{task.method}", node=_tracing.label(task.node_id)
            ):
                results[task.node_id] = execute_grounding_task(task, cache)
            stats.tasks += 1
        return results, stats

    def _ship(
        self,
        bundles: list[BundleTask],
        tasks: list[GroundingTask],
        sample_tasks: list[GroundingTask],
        cache: BundleCache,
        results: dict[tuple, BatchResult],
        stats: ExecutorStats,
    ) -> None:
        """Submit shardable nodes, merge what comes back.

        Bundle results merge into the caller's cache (``seed`` — no
        hit/miss noise), grounding results go straight into the result
        map, and sampled nodes' per-range totals accumulate until every
        range of a node has arrived, at which point the node's result is
        assembled in the parent (nodes missing a range fall back to the
        serial path).  Completion order is irrelevant: nodes are keyed
        by fingerprint ids and the exact integer/Fraction arithmetic
        makes merged results identical to in-process ones.
        """
        from dataclasses import replace

        tracer = _tracing.ACTIVE
        trace = tracer is not None
        pool = _worker_pool(self.jobs, self.start_method)
        futures = {}
        submits: dict[object, float] = {}

        def _submit(payload, kind, *args):
            future = pool.submit(payload, *args, trace)
            futures[future] = kind
            if trace:
                submits[future] = tracer.now()

        for chunk in _chunked(bundles, self.jobs):
            _submit(_run_bundle_chunk, "bundle", chunk)
        for chunk in _chunked(tasks, self.jobs):
            _submit(_run_grounding_chunk, "task", chunk)
        sample_by_node: dict[tuple, GroundingTask] = {}
        expected: dict[tuple, int] = {}
        partials: dict[tuple, list[tuple[dict, int]]] = {}
        for task in sample_tasks:
            spec = task.sample_spec
            start = spec.prior.rounds if spec.prior else 0
            ranges = _round_ranges(start, spec.fresh_rounds, self.jobs)
            sample_by_node[task.node_id] = task
            expected[task.node_id] = len(ranges)
            partials[task.node_id] = []
            # Ship without the prior state: workers only run the fresh
            # range, the parent folds the prior back in on assembly.
            shippable = replace(task, sample_spec=replace(spec, prior=None))
            for range_start, count in ranges:
                _submit(_run_sample_chunk, "sample", shippable, range_start, count)
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        try:
            for future in done:
                kind = futures[future]
                if kind == "sample":
                    node_id, totals, evaluations, shipment = future.result()
                    partials[node_id].append((totals, evaluations))
                    stats.shipped += 1
                else:
                    pairs, shipment = future.result()
                    for node_id, value in pairs:
                        if kind == "bundle":
                            cache.seed(node_id[1], value)
                            stats.bundle_tasks += 1
                        else:
                            results[node_id] = value
                            stats.tasks += 1
                        stats.shipped += 1
                _merge_shipped_trace(
                    tracer, submits.get(future), shipment, f"shard:{kind}"
                )
            for node_id, parts in partials.items():
                if len(parts) != expected[node_id]:
                    continue
                with _tracing.maybe_span(
                    tracer,
                    "node:sampled",
                    node=_tracing.label(node_id),
                    ranges=len(parts),
                ):
                    totals = merge_totals({}, *(part[0] for part in parts))
                    evaluations = sum(part[1] for part in parts)
                    results[node_id] = assemble_sample_result(
                        sample_by_node[node_id], totals, evaluations
                    )
                stats.tasks += 1
        finally:
            for future in not_done:
                future.cancel()


__all__ = [
    "BundleCache",
    "Executor",
    "ExecutorStats",
    "SerialExecutor",
    "ShardedExecutor",
    "assemble_sample_result",
    "execute_grounding_task",
    "execute_sample_task",
    "shutdown_worker_pools",
]

"""repro.engine — shared-work batch attribution.

The seed pipeline answered "what is the Shapley value of *every* fact?"
with ``m`` independent runs of the Lemma 3.2 counts reduction — two full
CntSat recursions per fact.  This package answers it with **one** shared
recursion plus closed-form convolution algebra.

The component-convolution trick
-------------------------------
For a self-join-free query, the variable-connected components of the
Gaifman graph touch disjoint relations and therefore own disjoint sets of
database facts.  The query is the conjunction of its components, so the
count vector ``c[k] = |Sat(D, q, k)|`` factorizes as the convolution
(polynomial product) of per-component count vectors.  Perturbing one fact
``f`` — moving it to the exogenous side for ``Sat^{+f}`` or deleting it
for ``Sat^{-f}`` — only changes the factor of the component that owns
``f``; every other component contributes the *same closed-form
convolution term* it contributed to the baseline.  Prefix/suffix products
over the component vectors make the "everything but component j" factor
an O(1)-convolution lookup, so all ``m`` fact perturbations reuse the
same baseline factors instead of recomputing them.  The identical
argument applies one level down, where CntSat slices a component by its
root variable's value and UNSAT vectors convolve (disjunction): a fact
perturbs only its own slice.  Applied recursively this turns ``2m`` full
recursions into one traversal with O(1) extra convolutions per fact per
level — the measured ≥5x (typically 10–50x) speedup of
``benchmarks/bench_engine.py``.

On top of the shared recursion the engine adds:

* **with/without sharing**: only the deletion vector ``Sat^{-f}`` is
  threaded through the recursion; the ``Sat^{+f}`` variant is derived
  from the baseline via ``Sat(k+1) = Sat^{+f}(k) + Sat^{-f}(k+1)``,
  halving the per-fact convolution work;
* a bounded LRU cache of per-component count bundles keyed on a
  canonical (component, facts) fingerprint, so overlapping requests and
  repeated queries share sub-results (:mod:`repro.engine.cache`,
  :mod:`repro.engine.fingerprint`);
* a result cache over whole ``(database, query, X, grounding)``
  requests — the grounding component keeps distinct answers ``q_t``,
  ``q_t'`` of a non-Boolean query from ever colliding;
* **answer batches** (:meth:`BatchAttributionEngine.batch_answers`):
  the groundings of one non-Boolean query share Gaifman-component
  bundles across answers through a call-scoped :class:`BundlePool` —
  the backbone of engine-backed ``answer_attribution`` and
  ``shapley_aggregate``;
* an optional **persistent on-disk result cache**
  (:mod:`repro.engine.persistent`): versioned JSON entries keyed by
  fingerprint digests, atomic writes, so warm results survive across
  processes (``--cache-dir`` on the CLI);
* dichotomy dispatch identical to the fact-at-a-time front door:
  CntSat, then a single ExoShap rewrite, then bounded brute force
  (:mod:`repro.engine.core`).

Usage::

    from repro.engine import default_engine

    result = default_engine().batch(database, query)
    result.shapley[some_fact]   # exact Fraction
    result.banzhaf[some_fact]   # same vectors, different weights
    default_engine().stats      # cache hit/miss accounting

or, from the CLI::

    python -m repro batch db.json "q() :- Stud(x), not TA(x), Reg(x, y)"
"""

from repro.engine.bundles import (
    BatchVectors,
    CountBundle,
    batch_count_vectors,
    derive_with_vector,
)
from repro.engine.cache import BundlePool, CacheStats, LRUCache
from repro.engine.core import (
    AnswerBatchResult,
    BatchAttributionEngine,
    BatchResult,
    default_engine,
)
from repro.engine.fingerprint import (
    fingerprint_component,
    fingerprint_database,
    fingerprint_grounding,
    fingerprint_query,
    fingerprint_request,
)
from repro.engine.persistent import PersistentResultCache, digest_key

__all__ = [
    "AnswerBatchResult",
    "BatchAttributionEngine",
    "BatchResult",
    "BatchVectors",
    "BundlePool",
    "CacheStats",
    "CountBundle",
    "LRUCache",
    "PersistentResultCache",
    "batch_count_vectors",
    "default_engine",
    "derive_with_vector",
    "digest_key",
    "fingerprint_component",
    "fingerprint_database",
    "fingerprint_grounding",
    "fingerprint_query",
    "fingerprint_request",
]

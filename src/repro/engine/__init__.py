"""repro.engine — shared-work batch attribution, split into plan / execute / store.

The seed pipeline answered "what is the Shapley value of *every* fact?"
with ``m`` independent runs of the Lemma 3.2 counts reduction — two full
CntSat recursions per fact.  This package answers it with **one** shared
recursion plus closed-form convolution algebra, organized as three
pluggable layers behind one engine front door.

Architecture (plan/execute engine, PR 3)
----------------------------------------
::

    request ──► planner ──► Plan (DAG) ──► executor ──► results ──► store
                 │                           │                        │
                 │ method dispatch           │ SerialExecutor         │ MemoryResultStore (LRU)
                 │ fingerprint node ids      │ ShardedExecutor        │ PersistentResultCache
                 │ store pruning             │   (ProcessPool,        │ TieredResultStore
                 │ up-front validation       │    BundlePool merge)   │   (promotion)

* The **planner** (:mod:`repro.engine.plan`) turns a ``(database, query,
  groundings)`` request into an explicit DAG: one grounding task per
  answer (method dispatch — CntSat, one ExoShap rewrite, validated brute
  force — happens here) over per-component bundle tasks that are
  deduplicated across groundings by canonical fingerprint.  Nodes whose
  request key the result store already holds are pruned before any
  execution; intractable requests fail at plan time.
* **Executors** (:mod:`repro.engine.executors`) run the plan.
  :class:`SerialExecutor` (default) keeps today's in-process semantics;
  :class:`ShardedExecutor` ships independent bundle and brute-force
  nodes to a ``ProcessPoolExecutor`` (``--jobs N`` on the CLI,
  ``REPRO_JOBS``/``REPRO_START_METHOD`` in the environment) and merges
  the count vectors back through the :class:`BundlePool` — exact integer
  arithmetic makes sharded results bit-identical to serial ones.
* **Result stores** (:mod:`repro.engine.stores`) decide whether a node
  needed computing at all: the in-memory LRU and the on-disk
  :class:`PersistentResultCache` (optionally bounded via
  ``max_entries``/``max_bytes`` LRU eviction) are interchangeable behind
  :class:`ResultStore`, and compose into a :class:`TieredResultStore`
  with read-through promotion.
* The engine is **delta-aware** (:mod:`repro.engine.delta`,
  PR 5): store keys cover only a request's query-relevant facts, so a
  fact insertion/deletion/flip (:class:`DatabaseDelta`,
  :func:`database_delta`/:func:`apply_delta`) invalidates exactly the
  requests and Gaifman components it touches — everything else is
  served across database versions, bit-identically, with the engine's
  ``stats["delta"]`` reporting versions seen, null players zero-filled,
  and components reused vs recomputed.
* The engine has an **approximation tier** (:mod:`repro.engine.policy`,
  :mod:`repro.shapley.sampling`, PR 6): every front door takes one
  :class:`MethodPolicy` (``auto``/``exact``/``brute-force``/``sampled``
  plus an ``(epsilon, delta)`` accuracy contract), and ``auto`` serves
  the intractable class — non-hierarchical queries too large for brute
  force — as Hoeffding-bounded Shapley estimates instead of raising.
  Sampled results carry an :class:`AttributionEstimate` and leave a
  resumable :class:`~repro.shapley.sampling.SampleState` in the store,
  so :meth:`BatchAttributionEngine.refine` (and the daemon's ``refine``
  op) tightens the bound by extending the same deterministic
  permutation stream — never recomputing a completed round, across
  processes, restarts, and irrelevant database deltas.

The component-convolution trick
-------------------------------
For a self-join-free query, the variable-connected components of the
Gaifman graph touch disjoint relations and therefore own disjoint sets of
database facts.  The query is the conjunction of its components, so the
count vector ``c[k] = |Sat(D, q, k)|`` factorizes as the convolution
(polynomial product) of per-component count vectors.  Perturbing one fact
``f`` — moving it to the exogenous side for ``Sat^{+f}`` or deleting it
for ``Sat^{-f}`` — only changes the factor of the component that owns
``f``; every other component contributes the *same closed-form
convolution term* it contributed to the baseline.  Prefix/suffix products
over the component vectors make the "everything but component j" factor
an O(1)-convolution lookup, so all ``m`` fact perturbations reuse the
same baseline factors instead of recomputing them.  The identical
argument applies one level down, where CntSat slices a component by its
root variable's value and UNSAT vectors convolve (disjunction): a fact
perturbs only its own slice.  Applied recursively this turns ``2m`` full
recursions into one traversal with O(1) extra convolutions per fact per
level — the measured ≥5x (typically 10–50x) speedup of
``benchmarks/bench_engine.py``.  It is also what makes the DAG shard
well: components are independent work units by construction
(``benchmarks/bench_parallel.py`` measures the scaling).

On top of the shared recursion the engine keeps: **with/without
sharing** (only the deletion vector ``Sat^{-f}`` is threaded through the
recursion; ``Sat^{+f}`` is derived from the baseline via ``Sat(k+1) =
Sat^{+f}(k) + Sat^{-f}(k+1)``); the bounded LRU **component-bundle
cache** keyed on canonical fingerprints (:mod:`repro.engine.cache`,
:mod:`repro.engine.fingerprint`); **answer batches**
(:meth:`BatchAttributionEngine.batch_answers`) whose groundings share
Gaifman-component bundles through a call-scoped :class:`BundlePool`; and
grounding-aware request fingerprints so distinct answers ``q_t``,
``q_t'`` never collide in any store.

Usage::

    from repro.engine import default_engine, ShardedExecutor
    from repro.engine import BatchAttributionEngine

    result = default_engine().batch(database, query)
    result.shapley[some_fact]   # exact Fraction
    result.banzhaf[some_fact]   # same vectors, different weights

    engine = BatchAttributionEngine(jobs=4)          # sharded backend
    engine.batch_answers(database, non_boolean_query)
    engine.stats                # per-layer accounting:
    #   components/results/persistent (caches, historical keys),
    #   planner (pruned vs planned), store (any-tier hits),
    #   executor (tasks, shipped, fallbacks)

or, from the CLI::

    python -m repro batch db.json "q() :- Stud(x), not TA(x), Reg(x, y)"
    python -m repro answers db.json "ans(x) :- Stud(x), Reg(x, y)" --jobs 4

Fork/spawn safety: worker and daemon children must not inherit the
parent's default engine — :func:`reset_default_engine` is registered as
an ``os.register_at_fork`` hook, so forked children lazily rebuild a
fresh engine with empty caches and zeroed stats.
"""

from repro.engine.bundles import (
    BatchVectors,
    CountBundle,
    batch_count_vectors,
    bundle_for_component,
    derive_with_vector,
    top_level_components,
)
from repro.engine.cache import BundlePool, CacheStats, LRUCache
from repro.engine.core import (
    BatchAttributionEngine,
    default_engine,
    environment_problems,
    reset_default_engine,
)
from repro.engine.delta import (
    DatabaseDelta,
    DeltaStats,
    apply_delta,
    database_delta,
    delta_from_dict,
    delta_to_dict,
    delta_touches_query,
    dirty_components,
)
from repro.engine.executors import (
    Executor,
    ExecutorStats,
    SerialExecutor,
    ShardedExecutor,
    execute_grounding_task,
)
from repro.engine.fingerprint import (
    fingerprint_component,
    fingerprint_database,
    fingerprint_grounding,
    fingerprint_query,
    fingerprint_request,
    fingerprint_sample_state,
    fingerprint_sampled,
    relevant_facts,
)
from repro.engine.persistent import PersistentResultCache, digest_key
from repro.engine.sqlite_store import SQLiteResultStore
from repro.engine.plan import (
    BundleTask,
    GroundingTask,
    Plan,
    PlanRequest,
    PlanStats,
    SampleSpec,
    SampleStats,
    build_plan,
)
from repro.engine.policy import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    METHODS,
    MethodPolicy,
    resolve_policy,
)
from repro.engine.results import (
    AnswerBatchResult,
    AttributionEstimate,
    BatchResult,
    inflate_result,
    project_result,
    result_from_state,
    result_from_vectors,
)
from repro.engine.stores import (
    MemoryResultStore,
    ResultStore,
    StoredValue,
    TieredResultStore,
)

__all__ = [
    "AnswerBatchResult",
    "AttributionEstimate",
    "BatchAttributionEngine",
    "BatchResult",
    "BatchVectors",
    "BundlePool",
    "BundleTask",
    "CacheStats",
    "CountBundle",
    "DEFAULT_DELTA",
    "DEFAULT_EPSILON",
    "DatabaseDelta",
    "DeltaStats",
    "Executor",
    "ExecutorStats",
    "GroundingTask",
    "LRUCache",
    "METHODS",
    "MemoryResultStore",
    "MethodPolicy",
    "PersistentResultCache",
    "Plan",
    "PlanRequest",
    "PlanStats",
    "ResultStore",
    "SQLiteResultStore",
    "SampleSpec",
    "SampleStats",
    "SerialExecutor",
    "ShardedExecutor",
    "StoredValue",
    "TieredResultStore",
    "apply_delta",
    "batch_count_vectors",
    "build_plan",
    "bundle_for_component",
    "database_delta",
    "default_engine",
    "delta_from_dict",
    "delta_to_dict",
    "delta_touches_query",
    "derive_with_vector",
    "digest_key",
    "dirty_components",
    "environment_problems",
    "execute_grounding_task",
    "fingerprint_component",
    "fingerprint_database",
    "fingerprint_grounding",
    "fingerprint_query",
    "fingerprint_request",
    "fingerprint_sample_state",
    "fingerprint_sampled",
    "inflate_result",
    "project_result",
    "relevant_facts",
    "reset_default_engine",
    "resolve_policy",
    "result_from_state",
    "result_from_vectors",
    "top_level_components",
]

"""The result-store layer: interchangeable homes for finished results.

The planner consults exactly one object — a :class:`ResultStore` — to
decide which plan nodes can be pruned before execution; the engine writes
every freshly executed result back through the same object.  Stores are
therefore the third layer of the plan/execute split: planning decides
*what* to compute, executors decide *where*, stores decide *whether it
was already computed at all*.

Two concrete stores plus one combinator cover the engine's needs:

* :class:`MemoryResultStore` — the in-process LRU
  (:class:`repro.engine.cache.LRUCache`) behind the store interface;
* :class:`repro.engine.persistent.PersistentResultCache` — the on-disk
  cache (already a conforming store: ``get``/``put``/``stats``);
* :class:`TieredResultStore` — an ordered chain (fastest first) with
  read-through promotion: a hit in a slower tier is copied into every
  faster tier, so a disk-warm entry becomes memory-warm on first use.

All stores share the contract that a hit returns a value *equal* to what
a fresh computation would produce — exact ``Fraction`` results make that
safe — and expose :class:`repro.engine.cache.CacheStats` accounting.
"""

from __future__ import annotations

from typing import Protocol, Union, runtime_checkable

from repro.engine.cache import CacheStats, LRUCache
from repro.engine.results import BatchResult
from repro.obs import tracing as _tracing
from repro.shapley.sampling import SampleState

#: What a store holds: finished results under request keys, and — since
#: the approximation tier — resumable sampler states under the
#: policy-independent ``("sample-state", ...)`` keys of
#: :func:`repro.engine.fingerprint.fingerprint_sample_state`.
StoredValue = Union[BatchResult, SampleState]


@runtime_checkable
class ResultStore(Protocol):
    """Anything that can answer "was this request already computed?".

    Keys are the canonical request fingerprints of
    :func:`repro.engine.fingerprint.fingerprint_request` (plus the
    ``("sampled", ...)`` / ``("sample-state", ...)`` derivatives of the
    approximation tier); values are :data:`StoredValue` objects.  The
    key discipline keeps kinds apart — a result key never yields a
    state, and vice versa.  ``get`` counts a hit or a miss on ``stats``;
    ``put`` is best effort (a store may decline an entry, e.g.
    non-JSON-safe constants on disk).
    """

    stats: CacheStats

    def get(self, key: tuple) -> StoredValue | None: ...

    def put(self, key: tuple, result: StoredValue) -> object: ...


class MemoryResultStore:
    """The in-process result store: an LRU cache behind the store API.

    Wraps a caller-supplied :class:`LRUCache` (the engine passes its
    ``result_cache`` so the historical ``stats["results"]`` counters keep
    ticking) or owns a fresh one.
    """

    def __init__(self, cache: LRUCache | None = None, maxsize: int = 128) -> None:
        self.cache = cache if cache is not None else LRUCache(maxsize)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def __len__(self) -> int:
        return len(self.cache)

    def get(self, key: tuple) -> StoredValue | None:
        if _tracing.ACTIVE is None:
            return self.cache.get(key)
        with _tracing.ACTIVE.span("store.get", tier="memory") as span:
            value = self.cache.get(key)
            span.set("hit", value is not None)
            return value

    def put(self, key: tuple, result: StoredValue) -> bool:
        with _tracing.maybe_span(_tracing.ACTIVE, "store.put", tier="memory"):
            self.cache.put(key, result)
        return True

    def clear(self) -> None:
        self.cache.clear()


class TieredResultStore:
    """An ordered chain of stores with read-through promotion.

    ``get`` consults the tiers fastest-first and copies a slow hit into
    every faster tier (a disk-warm entry is served from memory next
    time); ``put`` writes through to all tiers.  ``stats`` counts
    chain-level hits and misses — "did *any* tier have it" — which is the
    number the planner's pruning decisions are based on; per-tier
    counters remain available on the tiers themselves.
    """

    def __init__(self, *tiers: ResultStore | None) -> None:
        self.tiers: list[ResultStore] = [tier for tier in tiers if tier is not None]
        self.stats = CacheStats()

    def get(self, key: tuple) -> StoredValue | None:
        if _tracing.ACTIVE is None:
            return self._get(key)
        with _tracing.ACTIVE.span("store.get", tier="tiered") as span:
            value = self._get(key)
            span.set("hit", value is not None)
            return value

    def _get(self, key: tuple) -> StoredValue | None:
        for position, tier in enumerate(self.tiers):
            value = tier.get(key)
            if value is not None:
                for faster in self.tiers[:position]:
                    faster.put(key, value)
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return None

    def put(self, key: tuple, result: StoredValue) -> bool:
        with _tracing.maybe_span(_tracing.ACTIVE, "store.put", tier="tiered"):
            stored = False
            for tier in self.tiers:
                if tier.put(key, result) is not False:
                    stored = True
            return stored


__all__ = ["MemoryResultStore", "ResultStore", "StoredValue", "TieredResultStore"]

"""SQLite-backed shared result store: one file, many daemons, shared warmth.

The persistent JSON cache (:mod:`repro.engine.persistent`) already makes
results survive a process; this module makes them *shared* between live
processes.  A :class:`SQLiteResultStore` is a conforming
:class:`repro.engine.stores.ResultStore` whose entries live in a single
SQLite file opened in WAL mode, so N daemons pointed at the same path
read each other's freshly computed results the moment they are committed
— the shared tier of the fleet layer.

Design points:

* **One dialect.** Rows store exactly the versioned JSON payloads of
  :func:`repro.engine.persistent.encode_stored_value`, keyed by
  :func:`repro.engine.persistent.digest_key` — a value round-trips
  bit-identically whether it was served from memory, the JSON-file
  cache, or this store, and the two durable tiers can never disagree.
* **Concurrent-writer safe.** WAL journaling plus short ``BEGIN
  IMMEDIATE`` transactions make every upsert atomic under concurrent
  daemon writers; readers never block writers.  SQLite errors (a locked
  or corrupt file) degrade to misses/skips, never exceptions — losing
  the shared tier costs recomputation, not correctness.
* **Access-stamp LRU.** Every hit on a *bounded* store re-stamps its
  row (an unbounded store never evicts, so its hits stay read-only —
  except to revive a retired row, since a bounded opener of the same
  file could otherwise drain it); every bounded write evicts the
  stalest rows until ``max_entries``/``max_bytes`` hold again (with
  the same 7/8 low-water amortization as the JSON cache).
  :meth:`retire` back-dates a superseded database version's rows to
  :data:`repro.engine.persistent.RETIRED_STAMP` so eviction drains them
  first — retirement propagates fleet-wide through the shared file.
* **Claim markers.** :meth:`claim` is an insert-if-absent marker with a
  TTL: when identical requests land on *different* daemons at the same
  time, exactly one wins the claim and computes; the losers
  :meth:`await_claim` (poll until the winner releases or the TTL
  expires) and then find the winner's row warm in the store instead of
  recomputing.  A crashed winner's claim simply expires.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.engine.cache import CacheStats
from repro.engine.persistent import (
    RETIRED_STAMP,
    decode_stored_value,
    digest_key,
    encode_stored_value,
)
from repro.obs import tracing as _tracing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type names
    from repro.engine.stores import StoredValue

_SCHEMA = """\
CREATE TABLE IF NOT EXISTS results (
    digest TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    bytes INTEGER NOT NULL,
    writer TEXT,
    accessed REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS results_accessed ON results (accessed);
CREATE TABLE IF NOT EXISTS claims (
    digest TEXT PRIMARY KEY,
    owner TEXT NOT NULL,
    expires REAL NOT NULL
);
"""


@dataclass
class ClaimStats:
    """Counters for the cross-daemon claim protocol."""

    #: Claims this store instance won (it computed, others waited).
    won: int = 0
    #: Claims lost to a concurrent holder (this caller waited instead).
    lost: int = 0
    #: Stale claims taken over after their TTL expired (crashed winner).
    expired: int = 0
    #: Waits that ended with the winner's release — the cross-daemon
    #: coalescing events: each one is a computation that did not happen.
    coalesced: int = 0
    #: Waits that hit their deadline and computed anyway (best effort).
    timeouts: int = 0

    def snapshot(self) -> "ClaimStats":
        return ClaimStats(
            self.won, self.lost, self.expired, self.coalesced, self.timeouts
        )


class SQLiteResultStore:
    """A shared, bounded result store in one WAL-mode SQLite file.

    ``max_entries`` / ``max_bytes`` bound the table with access-stamp
    LRU eviction (``None`` = unbounded); ``claim_ttl`` is the default
    lifetime of a claim marker (a crashed claimant blocks duplicates
    for at most this long); ``timeout`` is SQLite's busy timeout —
    how long a writer waits on a locked database before degrading to
    a skipped write.

    The store is safe for concurrent use from multiple threads (one
    internal lock serializes this instance's statements) and multiple
    processes (WAL + immediate transactions); a forked child reopens
    its own connection transparently.
    """

    def __init__(
        self,
        path: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        *,
        claim_ttl: float = 30.0,
        timeout: float = 30.0,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.claim_ttl = float(claim_ttl)
        self.timeout = float(timeout)
        self.stats = CacheStats()
        self.claim_stats = ClaimStats()
        # Same contract as PersistentResultCache: the engine stamps the
        # writing database version's digest here before each execution
        # so retire() can target superseded versions later.
        self.writer_version: str | None = None
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        # Fail fast on an unusable path (read-only dir, not a database):
        # the constructor is the one place a broken store should raise.
        with self._lock:
            self._connection()

    # ------------------------------------------------------------------
    # Connection management (callers hold self._lock)
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            # A connection inherited across fork() must not be reused —
            # build a fresh one per process, lazily.
            conn = sqlite3.connect(
                str(self.path),
                timeout=self.timeout,
                check_same_thread=False,
                isolation_level=None,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            self._conn = conn
            self._pid = pid
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
            self._conn = None
            self._pid = None

    def __len__(self) -> int:
        with self._lock:
            try:
                row = self._connection().execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone()
            except sqlite3.Error:
                return 0
        return int(row[0])

    # ------------------------------------------------------------------
    # ResultStore protocol
    # ------------------------------------------------------------------
    def get(self, key: tuple) -> "StoredValue | None":
        if _tracing.ACTIVE is None:
            return self._get(key)
        with _tracing.ACTIVE.span("store.get", tier="shared") as span:
            value = self._get(key)
            span.set("hit", value is not None)
            return value

    def _get(self, key: tuple) -> "StoredValue | None":
        digest = digest_key(key)
        with self._lock:
            conn = self._connection()
            try:
                row = conn.execute(
                    "SELECT payload, accessed FROM results WHERE digest = ?",
                    (digest,),
                ).fetchone()
                if row is not None and (
                    self.max_entries is not None
                    or self.max_bytes is not None
                    or row[1] <= RETIRED_STAMP
                ):
                    # Re-earn the access stamp so LRU eviction spares
                    # entries that are still hot, and so a hit revives
                    # a retire()d row even here — another opener of the
                    # same file may be bounded.  Beyond that, unbounded
                    # stores never evict, so their hits skip the write
                    # transaction and stay read-only.
                    conn.execute(
                        "UPDATE results SET accessed = ? WHERE digest = ?",
                        (time.time(), digest),
                    )
            except sqlite3.Error:
                row = None
        if row is None:
            self.stats.misses += 1
            return None
        try:
            value = decode_stored_value(json.loads(row[0]))
        except (KeyError, TypeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: tuple, result: "StoredValue") -> bool:
        with _tracing.maybe_span(_tracing.ACTIVE, "store.put", tier="shared"):
            return self._put(key, result)

    def _put(self, key: tuple, result: "StoredValue") -> bool:
        payload = encode_stored_value(result)
        if payload is None:
            return False
        if self.writer_version is not None:
            payload["writer"] = self.writer_version
        text = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        digest = digest_key(key)
        now = time.time()
        with self._lock:
            conn = self._connection()
            try:
                conn.execute("BEGIN IMMEDIATE")
                conn.execute(
                    "INSERT INTO results (digest, payload, bytes, writer,"
                    " accessed) VALUES (?, ?, ?, ?, ?)"
                    " ON CONFLICT(digest) DO UPDATE SET"
                    " payload = excluded.payload, bytes = excluded.bytes,"
                    " writer = excluded.writer, accessed = excluded.accessed",
                    (digest, text, len(text), payload.get("writer"), now),
                )
                self._enforce_limits(conn)
                conn.execute("COMMIT")
            except sqlite3.Error:
                self._rollback(conn)
                return False
        return True

    @staticmethod
    def _rollback(conn: sqlite3.Connection) -> None:
        try:
            conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass

    def _enforce_limits(self, conn: sqlite3.Connection) -> None:
        """Evict stalest rows until both caps hold (same-transaction).

        Mirrors the JSON cache's policy: large caps drain to a 7/8
        low-water mark so the sweep amortizes, small caps are exact, and
        only a dimension that was actually crossed drains.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        count, total = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(bytes), 0) FROM results"
        ).fetchone()
        target_entries = self.max_entries
        if target_entries is not None and target_entries >= 16:
            target_entries -= target_entries // 8
        target_bytes = self.max_bytes
        if target_bytes is not None and target_bytes >= 4096:
            target_bytes -= target_bytes // 8
        entries_over = self.max_entries is not None and count > self.max_entries
        bytes_over = self.max_bytes is not None and total > self.max_bytes
        if not (entries_over or bytes_over):
            return
        for digest, size in conn.execute(
            "SELECT digest, bytes FROM results ORDER BY accessed, digest"
        ).fetchall():
            if not (
                (entries_over and count > target_entries)
                or (bytes_over and total > target_bytes)
            ):
                break
            conn.execute("DELETE FROM results WHERE digest = ?", (digest,))
            count -= 1
            total -= size
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Claim markers (cross-daemon request coalescing)
    # ------------------------------------------------------------------
    def claim(self, key: tuple, ttl: float | None = None, owner: str = "") -> bool:
        """Try to claim ``key``; True means this caller computes.

        Insert-if-absent with a TTL, atomic under concurrent daemons: of
        N simultaneous claimants exactly one wins (an expired marker —
        a crashed winner — is taken over).  Fail-open: a SQLite error
        counts as a win, so a broken shared file never blocks serving.
        """
        digest = digest_key(key)
        now = time.time()
        expires = now + (self.claim_ttl if ttl is None else float(ttl))
        with self._lock:
            conn = self._connection()
            try:
                conn.execute("BEGIN IMMEDIATE")
                row = conn.execute(
                    "SELECT expires FROM claims WHERE digest = ?", (digest,)
                ).fetchone()
                if row is None or float(row[0]) <= now:
                    if row is not None:
                        self.claim_stats.expired += 1
                    conn.execute(
                        "INSERT INTO claims (digest, owner, expires)"
                        " VALUES (?, ?, ?)"
                        " ON CONFLICT(digest) DO UPDATE SET"
                        " owner = excluded.owner, expires = excluded.expires",
                        (digest, owner, expires),
                    )
                    won = True
                else:
                    won = False
                conn.execute("COMMIT")
            except sqlite3.Error:
                self._rollback(conn)
                won = True
        if won:
            self.claim_stats.won += 1
        else:
            self.claim_stats.lost += 1
        return won

    def release(self, key: tuple) -> None:
        """Drop the claim marker for ``key`` (the winner's epilogue)."""
        digest = digest_key(key)
        with self._lock:
            conn = self._connection()
            try:
                conn.execute("DELETE FROM claims WHERE digest = ?", (digest,))
            except sqlite3.Error:
                pass

    def _claim_active(self, key: tuple) -> bool:
        digest = digest_key(key)
        with self._lock:
            conn = self._connection()
            try:
                row = conn.execute(
                    "SELECT expires FROM claims WHERE digest = ?", (digest,)
                ).fetchone()
            except sqlite3.Error:
                return False
        return row is not None and float(row[0]) > time.time()

    def await_claim(
        self,
        key: tuple,
        timeout: float | None = None,
        interval: float = 0.005,
    ) -> bool:
        """Block until ``key``'s claim clears; True when it did.

        The claim loser's path: poll (cheap indexed point reads) until
        the winner releases — at which point the winner's result row is
        already committed, so the caller's next store lookup is warm —
        or the marker expires.  ``timeout`` defaults to the store's
        ``claim_ttl``; False means the wait hit the deadline and the
        caller should just compute.
        """
        deadline = time.monotonic() + (
            self.claim_ttl if timeout is None else float(timeout)
        )
        wait = interval
        while self._claim_active(key):
            if time.monotonic() >= deadline:
                self.claim_stats.timeouts += 1
                return False
            time.sleep(wait)
            # Back off gently to bound polling pressure on the shared
            # file while long computations run.
            wait = min(wait * 1.5, 0.1)
        self.claim_stats.coalesced += 1
        return True

    # ------------------------------------------------------------------
    # Version retirement + maintenance
    # ------------------------------------------------------------------
    def retire(self, version: str) -> int:
        """Back-date every row written by ``version``; returns the count.

        One UPDATE: retired rows drop to the epoch-adjacent
        :data:`RETIRED_STAMP` so bounded eviction drains them first,
        exactly like the JSON cache — and because the file is shared,
        one daemon's ``db_update`` retires the whole fleet's entries.
        A later hit re-earns a live stamp.
        """
        with self._lock:
            conn = self._connection()
            try:
                cursor = conn.execute(
                    "UPDATE results SET accessed = ? WHERE writer = ?",
                    (RETIRED_STAMP, version),
                )
                return cursor.rowcount
            except sqlite3.Error:
                return 0

    def clear(self) -> None:
        """Drop every result row and claim marker (stats are kept)."""
        with self._lock:
            conn = self._connection()
            try:
                conn.execute("DELETE FROM results")
                conn.execute("DELETE FROM claims")
            except sqlite3.Error:
                pass


__all__ = ["ClaimStats", "SQLiteResultStore"]

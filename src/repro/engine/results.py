"""The result layer: attribution values and their assembly from count vectors.

This module owns the *outputs* of the plan/execute pipeline:

* :class:`BatchResult` — all-facts Shapley/Banzhaf values of one Boolean
  request, plus provenance (method, player count, cache origin);
* :class:`AnswerBatchResult` — the per-answer results of a non-Boolean
  request, with the linearity-based :meth:`AnswerBatchResult.aggregate`;
* :func:`result_from_vectors` — the Lemma 3.2 assembly turning the
  engine's per-fact count vectors into both measures at once.

Result objects are what the result stores (:mod:`repro.engine.stores`,
:mod:`repro.engine.persistent`) persist and what executors
(:mod:`repro.engine.executors`) return for each plan node, so the layer
sits below both and imports neither.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Mapping

from repro.core.facts import Constant, Fact
from repro.engine.bundles import BatchVectors
from repro.engine.cache import CacheStats
from repro.shapley.sampling import SampleState, achieved_epsilon
from repro.util.kernels import ShapleyAccumulator


@dataclass(frozen=True)
class AttributionEstimate:
    """The accuracy metadata of a sampled (``method="sampled"``) result.

    With probability at least ``1 - delta``, every per-fact Shapley
    value of the result is within ``epsilon`` of the exact value —
    ``epsilon`` is the *achieved* bound of the rounds actually folded
    in, which can be tighter than the contract the request asked for
    (anytime refinement only ever shrinks it).  ``rounds`` counts
    antithetic rounds, ``permutations`` the underlying permutation
    sweeps (two per round), and ``resumed_rounds`` how many of the
    rounds were reused from a stored :class:`SampleState` rather than
    recomputed.  ``state_digest`` is the resumable sample-state handle:
    the digest of the store key the state is persisted under.
    """

    epsilon: float
    delta: float
    rounds: int
    permutations: int
    resumed_rounds: int = 0
    state_digest: str | None = None


@dataclass(frozen=True)
class BatchResult:
    """All-facts attribution values plus provenance of the computation.

    The ``shapley`` and ``banzhaf`` mappings iterate their facts in the
    library's canonical order — sorted by ``repr`` — so callers observe
    one deterministic, documented ordering regardless of which algorithm
    or cache produced the result.

    ``estimate`` is ``None`` for exact methods and carries the
    ``(epsilon, delta)`` accuracy metadata for sampled ones — a sampled
    result's ``shapley`` values are estimates, and its ``banzhaf``
    mapping is empty (the permutation estimator draws coalition sizes
    uniformly, which matches Shapley's size distribution but not
    Banzhaf's).  ``sample_state`` is transport-only: executors attach
    the resumable sampler state for the engine to persist, and the
    engine strips it before a result leaves the public API.
    """

    shapley: Mapping[Fact, Fraction]
    banzhaf: Mapping[Fact, Fraction]
    method: str
    player_count: int
    from_cache: bool = False
    estimate: AttributionEstimate | None = None
    sample_state: SampleState | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class AnswerBatchResult:
    """Per-answer batch results for the groundings of one non-Boolean query.

    ``per_answer`` maps each answer tuple to the :class:`BatchResult` of
    its grounded Boolean query ``q_t``; answers iterate sorted by
    ``repr``.  ``pool_stats`` reports how often the cross-grounding
    bundle pool shared component work between answers.
    """

    per_answer: Mapping[tuple[Constant, ...], BatchResult]
    pool_stats: CacheStats = field(default_factory=CacheStats)

    def aggregate(
        self,
        value_of: Callable[[tuple[Constant, ...]], Fraction | int],
        measure: str = "shapley",
    ) -> dict[Fact, Fraction]:
        """Linearity: ``Σ_t value_of(t) · measure(D, q_t, f)`` per fact."""
        if measure not in ("shapley", "banzhaf"):
            raise ValueError(f"unknown measure {measure!r}")
        totals: dict[Fact, Fraction] = {}
        for answer, result in self.per_answer.items():
            weight = Fraction(value_of(answer))
            if not weight:
                continue
            for item, value in getattr(result, measure).items():
                totals[item] = totals.get(item, Fraction(0)) + weight * value
        return {item: totals[item] for item in sorted(totals, key=repr)}


def aggregate_spec(
    kind: str, value_index: int | None, head_arity: int
) -> tuple[Callable[[tuple[Constant, ...]], Fraction | int], str]:
    """The ``(weight, label)`` of a ``count``/``sum`` aggregate request.

    One validator for every front end — the CLI's ``--aggregate`` and the
    attribution service's ``aggregate`` operation — so the in-process and
    wire paths can never drift.  Raises :class:`ValueError` with a
    message phrased in the CLI's flag vocabulary (the wire protocol's
    parameters mirror the flags, so the text reads correctly on both).
    """
    if kind == "sum":
        if value_index is None:
            raise ValueError("--aggregate sum requires --value-index")
        index = int(value_index)
        if not 0 <= index < head_arity:
            raise ValueError(
                f"--value-index {index} out of range for head of size"
                f" {head_arity}"
            )
        return (lambda row: Fraction(row[index])), f"sum(t[{index}])"
    if kind == "count":
        return (lambda row: 1), "count"
    raise ValueError(f"aggregate must be 'count' or 'sum', got {kind!r}")


def project_result(result: BatchResult, relevant: frozenset[Fact]) -> BatchResult:
    """The restriction of a result to its query-relevant endogenous facts.

    This is the *stored* form under the relevance-scoped request keys of
    :func:`repro.engine.fingerprint.fingerprint_request`: facts outside
    the relevant slice are null players with provably zero values, so
    dropping them is lossless — :func:`inflate_result` zero-fills any
    version's irrelevant facts back in on a hit.  ``player_count``
    becomes the relevant-player count, the version-stable quantity.
    """
    shapley = {
        item: value for item, value in result.shapley.items() if item in relevant
    }
    banzhaf = {
        item: value for item, value in result.banzhaf.items() if item in relevant
    }
    return BatchResult(
        shapley, banzhaf, result.method, len(shapley), estimate=result.estimate
    )


def inflate_result(
    core: BatchResult, endogenous: frozenset[Fact]
) -> tuple[BatchResult, int]:
    """A stored core result widened to a concrete database version.

    Every endogenous fact of the current version missing from the core
    mapping is a null player for this request and gets an exact zero;
    ``player_count`` becomes the version's total.  Returns the widened
    result and how many facts were zero-filled (surfaced in
    :class:`repro.engine.delta.DeltaStats` — any relevance-scoped hit
    with irrelevant endogenous facts fills, same-version or cross).
    Shapley and Banzhaf dummy invariance make the widened values
    bit-identical to a cold recomputation on this version.

    Sampled cores widen the same way — a null player's *estimate* is
    the exact zero, since its marginal contribution is zero in every
    permutation — but their (empty) Banzhaf mapping stays empty: a
    zero-fill there would fabricate values the sampler never estimated.
    """
    zero = Fraction(0)
    shapley = {item: core.shapley.get(item, zero) for item in endogenous}
    if core.estimate is None:
        banzhaf = {item: core.banzhaf.get(item, zero) for item in endogenous}
    else:
        banzhaf = dict(core.banzhaf)
    filled = len(endogenous) - len(core.shapley)
    return (
        BatchResult(
            shapley,
            banzhaf,
            core.method,
            len(endogenous),
            estimate=core.estimate,
            sample_state=core.sample_state,
        ),
        max(0, filled),
    )


def result_from_state(
    state: SampleState, delta: float, state_digest: str | None = None
) -> BatchResult:
    """The sampled result a stored :class:`SampleState` already implies.

    Used when a request's accuracy contract is satisfied by rounds that
    are already folded into the stored state: the per-fact estimates are
    ``totals / (2 strata rounds)``, the achieved bound comes from the
    full stored round count (tighter than the contract), and every
    round counts as resumed — nothing was recomputed.
    """
    players = sorted(state.totals, key=repr)
    shapley = {player: state.value_of(player) for player in players}
    estimate = AttributionEstimate(
        epsilon=achieved_epsilon(state.rounds, delta),
        delta=delta,
        rounds=state.rounds,
        permutations=2 * state.strata * state.rounds,
        resumed_rounds=state.rounds,
        state_digest=state_digest,
    )
    return BatchResult(
        shapley,
        {},
        "sampled",
        len(players),
        estimate=estimate,
        sample_state=state,
    )


def result_from_vectors(vectors: BatchVectors, method: str) -> BatchResult:
    """Lemma 3.2 assembly: weighted sums of the per-fact vector deltas.

    Shapley and Banzhaf values fall out of the same ``(Sat^{+f},
    Sat^{-f})`` vectors — only the weights differ — so the convolution
    task of every plan always materializes both measures.

    Assembly is *deferred*: per fact, the Shapley numerator accumulates
    as one integer over the shared weight table
    (:class:`repro.util.kernels.ShapleyAccumulator`) and normalizes to a
    single ``Fraction`` at the end — bit-identical to the historical
    per-size ``Fraction`` multiply-add, minus one gcd per coalition
    size.
    """
    players = vectors.total_players
    shapley: dict[Fact, Fraction] = {item: Fraction(0) for item in vectors.zero_facts}
    banzhaf = dict(shapley)
    denominator = 2 ** (players - 1)
    for item, (sat_exo, sat_del) in vectors.per_fact.items():
        accumulator = ShapleyAccumulator(players)
        difference_total = 0
        for k in range(players):
            difference = sat_exo[k] - sat_del[k]
            if difference:
                accumulator.add(k, difference)
                difference_total += difference
        shapley[item] = accumulator.value()
        banzhaf[item] = Fraction(difference_total, denominator)
    return BatchResult(shapley, banzhaf, method, players)


__all__ = [
    "AnswerBatchResult",
    "AttributionEstimate",
    "BatchResult",
    "aggregate_spec",
    "inflate_result",
    "project_result",
    "result_from_state",
    "result_from_vectors",
]

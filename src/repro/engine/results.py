"""The result layer: attribution values and their assembly from count vectors.

This module owns the *outputs* of the plan/execute pipeline:

* :class:`BatchResult` — all-facts Shapley/Banzhaf values of one Boolean
  request, plus provenance (method, player count, cache origin);
* :class:`AnswerBatchResult` — the per-answer results of a non-Boolean
  request, with the linearity-based :meth:`AnswerBatchResult.aggregate`;
* :func:`result_from_vectors` — the Lemma 3.2 assembly turning the
  engine's per-fact count vectors into both measures at once.

Result objects are what the result stores (:mod:`repro.engine.stores`,
:mod:`repro.engine.persistent`) persist and what executors
(:mod:`repro.engine.executors`) return for each plan node, so the layer
sits below both and imports neither.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Mapping

from repro.core.facts import Constant, Fact
from repro.engine.bundles import BatchVectors
from repro.engine.cache import CacheStats
from repro.util.combinatorics import shapley_coefficient


@dataclass(frozen=True)
class BatchResult:
    """All-facts attribution values plus provenance of the computation.

    The ``shapley`` and ``banzhaf`` mappings iterate their facts in the
    library's canonical order — sorted by ``repr`` — so callers observe
    one deterministic, documented ordering regardless of which algorithm
    or cache produced the result.
    """

    shapley: Mapping[Fact, Fraction]
    banzhaf: Mapping[Fact, Fraction]
    method: str
    player_count: int
    from_cache: bool = False


@dataclass(frozen=True)
class AnswerBatchResult:
    """Per-answer batch results for the groundings of one non-Boolean query.

    ``per_answer`` maps each answer tuple to the :class:`BatchResult` of
    its grounded Boolean query ``q_t``; answers iterate sorted by
    ``repr``.  ``pool_stats`` reports how often the cross-grounding
    bundle pool shared component work between answers.
    """

    per_answer: Mapping[tuple[Constant, ...], BatchResult]
    pool_stats: CacheStats = field(default_factory=CacheStats)

    def aggregate(
        self,
        value_of: Callable[[tuple[Constant, ...]], Fraction | int],
        measure: str = "shapley",
    ) -> dict[Fact, Fraction]:
        """Linearity: ``Σ_t value_of(t) · measure(D, q_t, f)`` per fact."""
        if measure not in ("shapley", "banzhaf"):
            raise ValueError(f"unknown measure {measure!r}")
        totals: dict[Fact, Fraction] = {}
        for answer, result in self.per_answer.items():
            weight = Fraction(value_of(answer))
            if not weight:
                continue
            for item, value in getattr(result, measure).items():
                totals[item] = totals.get(item, Fraction(0)) + weight * value
        return {item: totals[item] for item in sorted(totals, key=repr)}


def aggregate_spec(
    kind: str, value_index: int | None, head_arity: int
) -> tuple[Callable[[tuple[Constant, ...]], Fraction | int], str]:
    """The ``(weight, label)`` of a ``count``/``sum`` aggregate request.

    One validator for every front end — the CLI's ``--aggregate`` and the
    attribution service's ``aggregate`` operation — so the in-process and
    wire paths can never drift.  Raises :class:`ValueError` with a
    message phrased in the CLI's flag vocabulary (the wire protocol's
    parameters mirror the flags, so the text reads correctly on both).
    """
    if kind == "sum":
        if value_index is None:
            raise ValueError("--aggregate sum requires --value-index")
        index = int(value_index)
        if not 0 <= index < head_arity:
            raise ValueError(
                f"--value-index {index} out of range for head of size"
                f" {head_arity}"
            )
        return (lambda row: Fraction(row[index])), f"sum(t[{index}])"
    if kind == "count":
        return (lambda row: 1), "count"
    raise ValueError(f"aggregate must be 'count' or 'sum', got {kind!r}")


def project_result(result: BatchResult, relevant: frozenset[Fact]) -> BatchResult:
    """The restriction of a result to its query-relevant endogenous facts.

    This is the *stored* form under the relevance-scoped request keys of
    :func:`repro.engine.fingerprint.fingerprint_request`: facts outside
    the relevant slice are null players with provably zero values, so
    dropping them is lossless — :func:`inflate_result` zero-fills any
    version's irrelevant facts back in on a hit.  ``player_count``
    becomes the relevant-player count, the version-stable quantity.
    """
    shapley = {
        item: value for item, value in result.shapley.items() if item in relevant
    }
    banzhaf = {
        item: value for item, value in result.banzhaf.items() if item in relevant
    }
    return BatchResult(shapley, banzhaf, result.method, len(shapley))


def inflate_result(
    core: BatchResult, endogenous: frozenset[Fact]
) -> tuple[BatchResult, int]:
    """A stored core result widened to a concrete database version.

    Every endogenous fact of the current version missing from the core
    mapping is a null player for this request and gets an exact zero;
    ``player_count`` becomes the version's total.  Returns the widened
    result and how many facts were zero-filled (surfaced in
    :class:`repro.engine.delta.DeltaStats` — any relevance-scoped hit
    with irrelevant endogenous facts fills, same-version or cross).
    Shapley and Banzhaf dummy invariance make the widened values
    bit-identical to a cold recomputation on this version.
    """
    zero = Fraction(0)
    shapley = {item: core.shapley.get(item, zero) for item in endogenous}
    banzhaf = {item: core.banzhaf.get(item, zero) for item in endogenous}
    filled = len(endogenous) - len(core.shapley)
    return (
        BatchResult(shapley, banzhaf, core.method, len(endogenous)),
        max(0, filled),
    )


def result_from_vectors(vectors: BatchVectors, method: str) -> BatchResult:
    """Lemma 3.2 assembly: weighted sums of the per-fact vector deltas.

    Shapley and Banzhaf values fall out of the same ``(Sat^{+f},
    Sat^{-f})`` vectors — only the weights differ — so the convolution
    task of every plan always materializes both measures.
    """
    players = vectors.total_players
    shapley: dict[Fact, Fraction] = {item: Fraction(0) for item in vectors.zero_facts}
    banzhaf = dict(shapley)
    denominator = 2 ** (players - 1)
    for item, (sat_exo, sat_del) in vectors.per_fact.items():
        value = Fraction(0)
        difference_total = 0
        for k in range(players):
            difference = sat_exo[k] - sat_del[k]
            if difference:
                value += shapley_coefficient(players, k) * difference
                difference_total += difference
        shapley[item] = value
        banzhaf[item] = Fraction(difference_total, denominator)
    return BatchResult(shapley, banzhaf, method, players)


__all__ = [
    "AnswerBatchResult",
    "BatchResult",
    "aggregate_spec",
    "inflate_result",
    "project_result",
    "result_from_vectors",
]

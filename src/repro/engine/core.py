"""The batch attribution engine: plan, execute, store.

:class:`BatchAttributionEngine` is the front door for all-facts
attribution.  Since the plan/execute split it is a thin orchestrator over
three interchangeable layers:

1. the **planner** (:mod:`repro.engine.plan`) turns a request into an
   explicit DAG of fingerprint-keyed work units — method dispatch
   (CntSat / ExoShap / brute force, Theorems 3.1 and 4.3) happens at
   plan time, as does pruning of nodes the result store already holds
   and up-front validation of intractable requests;
2. an **executor** (:mod:`repro.engine.executors`) runs the plan's
   nodes — :class:`repro.engine.executors.SerialExecutor` in-process
   (the default, today's semantics) or
   :class:`repro.engine.executors.ShardedExecutor` across worker
   processes, merging count vectors back through the bundle pool;
3. a **result store** (:mod:`repro.engine.stores`) keeps finished
   results — the in-memory LRU and the optional persistent on-disk cache
   compose into one :class:`repro.engine.stores.TieredResultStore` with
   read-through promotion.

Shapley and Banzhaf values fall out of the same per-fact count vectors,
so the engine always materializes both.  ``stats`` exposes per-layer
accounting (planner prunes, store hits, executor tasks) alongside the
historical per-cache counters.

Engines are cheap to construct; share one instance (see
:func:`default_engine`) to share the caches.  The environment variables
``REPRO_JOBS`` and ``REPRO_START_METHOD`` select the default executor
backend when none is passed explicitly (``REPRO_JOBS=2`` makes every
engine shard across two worker processes), which is how the CI matrix
runs the whole engine suite under a sharded backend.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import replace
from typing import TYPE_CHECKING, AbstractSet, Iterable

from repro.core.database import Database
from repro.core.facts import Constant, Fact
from repro.core.query import BooleanQuery, ConjunctiveQuery
from repro.engine.cache import BundlePool, CacheStats, LRUCache
from repro.engine.delta import DeltaStats
from repro.engine.executors import (
    Executor,
    ExecutorStats,
    SerialExecutor,
    ShardedExecutor,
)
from repro.engine.plan import Plan, PlanRequest, PlanStats, SampleStats, build_plan
from repro.engine.policy import MethodPolicy, resolve_policy
from repro.engine.results import (
    AnswerBatchResult,
    BatchResult,
    inflate_result,
    project_result,
)
from repro.engine.stores import MemoryResultStore, ResultStore, TieredResultStore
from repro.obs import tracing as _tracing
from repro.util import kernels

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from fractions import Fraction

    from repro.engine.persistent import PersistentResultCache


def environment_problems() -> list[str]:
    """Human-readable problems with the engine's environment variables.

    The engine itself stays lenient (:func:`_executor_from_environment`
    silently degrades to the serial backend, so library imports never
    break), but front ends that a human drives — the CLI, the daemon —
    call this first and turn each problem into a clear one-line error
    instead of silently losing the parallelism the user asked for.
    """
    problems: list[str] = []
    raw_jobs = os.environ.get("REPRO_JOBS")
    if raw_jobs:
        try:
            jobs = int(raw_jobs)
        except ValueError:
            problems.append(
                f"REPRO_JOBS={raw_jobs!r} is not an integer"
                " (expected a worker count, e.g. REPRO_JOBS=2)"
            )
        else:
            if jobs < 1:
                problems.append(
                    f"REPRO_JOBS={raw_jobs!r} must be a positive integer"
                    " (1 means serial execution)"
                )
    raw_method = os.environ.get("REPRO_START_METHOD")
    if raw_method:
        import multiprocessing

        known = multiprocessing.get_all_start_methods()
        if raw_method not in known:
            problems.append(
                f"REPRO_START_METHOD={raw_method!r} is not a multiprocessing"
                f" start method (expected one of: {', '.join(known)})"
            )
    return problems


def _executor_from_environment() -> Executor:
    """The executor selected by ``REPRO_JOBS`` / ``REPRO_START_METHOD``.

    Unset, unparsable, or ``<= 1`` job counts mean the serial backend —
    the environment can only ever *add* parallelism, never break an
    engine construction.
    """
    try:
        jobs = int(os.environ.get("REPRO_JOBS", ""))
    except ValueError:
        jobs = 0
    if jobs > 1:
        try:
            return ShardedExecutor(
                jobs=jobs,
                start_method=os.environ.get("REPRO_START_METHOD") or None,
            )
        except ValueError:
            # A typo'd REPRO_START_METHOD must not break engine
            # construction — it just loses the parallelism it asked for.
            return SerialExecutor()
    return SerialExecutor()


class _RequestScope:
    """What one public engine call threads through its request window."""

    __slots__ = ("tracer", "span", "plan")

    def __init__(self, tracer: "_tracing.Tracer | None", span) -> None:
        self.tracer = tracer
        self.span = span
        self.plan: Plan | None = None


class BatchAttributionEngine:
    """Computes Shapley/Banzhaf values for all endogenous facts at once.

    Instances hold two bounded LRU caches: a *result* cache keyed on the
    whole ``(database, query, X, grounding)`` request — wrapped, together
    with the optional persistent cache, into the engine's result store —
    and a *component* cache keyed on ``(component fingerprint, scoped
    facts)`` that lets overlapping requests share per-component count
    bundles.

    ``executor`` picks the backend (default: serial, or whatever
    ``REPRO_JOBS`` says); ``jobs`` is a convenience shortcut for
    ``executor=ShardedExecutor(jobs=...)``.  ``store`` replaces the whole
    result layer; when omitted it is built from the LRU, ``shared``, and
    ``persistent``.  ``shared`` is the fleet tier — typically a
    :class:`repro.engine.sqlite_store.SQLiteResultStore` whose file N
    daemons point at — slotted between the in-memory LRU and the
    per-process JSON cache, so sibling daemons serve each other's warm
    results and retirement propagates fleet-wide.
    """

    def __init__(
        self,
        component_cache_size: int = 512,
        result_cache_size: int = 128,
        persistent: "PersistentResultCache | None" = None,
        executor: Executor | None = None,
        store: ResultStore | None = None,
        jobs: int | None = None,
        start_method: str | None = None,
        sample_strata: int = 1,
        trace: bool = False,
        shared: ResultStore | None = None,
    ) -> None:
        self.component_cache: LRUCache = LRUCache(component_cache_size)
        self.result_cache: LRUCache = LRUCache(result_cache_size)
        self.persistent = persistent
        self.shared = shared
        if store is None:
            store = TieredResultStore(
                MemoryResultStore(self.result_cache), shared, persistent
            )
        self.store = store
        if jobs is not None and jobs < 1:
            # Same contract as ShardedExecutor: reject broken job counts
            # loudly instead of silently degrading to serial.
            raise ValueError(f"jobs must be positive, got {jobs}")
        if executor is None:
            if jobs is not None:
                # An explicit job count always wins over the environment:
                # jobs=1 must mean serial even under REPRO_JOBS=2.
                executor = (
                    ShardedExecutor(jobs=jobs, start_method=start_method)
                    if jobs > 1
                    else SerialExecutor()
                )
            else:
                executor = _executor_from_environment()
        if sample_strata < 1:
            raise ValueError(
                f"sample_strata must be positive, got {sample_strata}"
            )
        # Per-round stratification of the sampled method: strata=1 is
        # the plain antithetic sampler (bit-identical); higher counts
        # sweep evenly-spaced rotations of each round's permutation —
        # the stratified allocator folded into the round structure.
        self.sample_strata = sample_strata
        self.executor = executor
        # Trace every request by default when True; individual calls can
        # still opt in/out (or supply their own tracer) per request.
        self.trace = bool(trace)
        #: The finished trace document of the last engine-traced request
        #: (left alone when the caller supplied its own tracer).
        self.last_trace: dict | None = None
        #: Engine-scoped kernel accounting: the sum of per-request
        #: deltas, vs the process-wide totals of
        #: :func:`repro.util.kernels.kernel_stats`.
        self.kernel_stats = kernels.KernelStats()
        #: The kernel delta of the most recent request (also attached to
        #: its plan as ``plan.kernel_stats``).
        self.last_kernel_stats: "kernels.KernelStats | None" = None
        self.planner_stats = PlanStats()
        self.executor_stats = ExecutorStats(processes=self.executor.jobs)
        self.delta_stats = DeltaStats()
        self.sample_stats = SampleStats()
        # Distinct database fingerprints served, for version accounting.
        # Bounded: past the cap new versions stop being *counted* as new,
        # which only ever under-reports versions_seen.
        self._versions: set[tuple] = set()
        self._versions_cap = 1024

    # ------------------------------------------------------------------
    # Per-request scoping (tracing + kernel counter deltas)
    # ------------------------------------------------------------------
    def _resolve_tracer(
        self, trace: "bool | _tracing.Tracer | None"
    ) -> tuple["_tracing.Tracer | None", bool]:
        """The request's tracer, and whether the engine owns documenting it.

        ``None`` defers to the engine-level ``trace`` default; ``True``
        builds a fresh tracer whose finished document lands in
        :attr:`last_trace`; a :class:`repro.obs.tracing.Tracer` instance
        (the daemon's) is used as-is — its owner documents it, so engine
        spans nest under whatever the owner already opened.
        """
        if trace is None:
            trace = self.trace
        if trace is False:
            return None, False
        if trace is True:
            return _tracing.Tracer(), True
        return trace, False

    @contextmanager
    def _request_scope(
        self, trace: "bool | _tracing.Tracer | None", kind: str
    ):
        """One request's accounting window: ``request`` span + kernel delta.

        The window opens *before* planning (plan-time kernel selections
        belong to the request) and closes after execution, when the
        process-wide kernel counter delta is attached to the plan
        (``plan.kernel_stats``), folded into the engine-scoped
        :attr:`kernel_stats` aggregate, and kept as
        :attr:`last_kernel_stats`.  Under a sharded executor the delta
        covers parent-side work only — workers count into their own
        process-local totals.
        """
        tracer, owned = self._resolve_tracer(trace)
        before = kernels.kernel_stats().snapshot()
        scope: _RequestScope | None = None
        try:
            with _tracing.activate(tracer):
                with _tracing.maybe_span(tracer, "request", kind=kind) as span:
                    scope = _RequestScope(tracer, span)
                    yield scope
        finally:
            delta = kernels.kernel_stats().delta(before)
            self.kernel_stats.merge(delta)
            self.last_kernel_stats = delta
            if scope is not None and scope.plan is not None:
                scope.plan.kernel_stats = delta
            if owned:
                self.last_trace = tracer.document()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def batch(
        self,
        database: Database,
        query: BooleanQuery,
        *,
        exogenous_relations: AbstractSet[str] | None = None,
        policy: MethodPolicy | str | None = None,
        allow_brute_force: bool | None = None,
        grounding: tuple[Constant, ...] | None = None,
        pool: BundlePool | None = None,
        trace: "bool | _tracing.Tracer | None" = None,
    ) -> BatchResult:
        """Shapley and Banzhaf values of every endogenous fact of ``D``.

        One plan with a single grounding request: the planner consults
        the result store (a satisfied plan executes nothing), the
        executor runs whatever remains, and the fresh result is written
        back through the store.  All options are keyword-only.

        ``policy`` selects the method and — for sampled answers — the
        ``(epsilon, delta)`` accuracy contract (a bare method name such
        as ``"sampled"`` is accepted); the default ``auto`` policy
        serves every request: exact algorithms where the dichotomy
        allows, the Section 5 additive FPRAS beyond them.  A sampled
        result carries its accuracy metadata in ``result.estimate`` and
        an empty Banzhaf mapping.  ``allow_brute_force`` is the
        deprecated spelling (``True`` = ``auto``, ``False`` =
        ``exact``) and warns once per process.

        ``grounding`` carries the head constants when ``query`` is the
        grounding ``q_t`` of a non-Boolean query at answer ``t``; it is
        part of the request fingerprint, so distinct answers can never
        collide even when their grounded atom sets coincide.  ``pool``
        lets an answer batch share component bundles across groundings
        (see :meth:`batch_answers`).

        ``trace`` opts this request into span tracing: ``True`` records
        a fresh trace into :attr:`last_trace`, a
        :class:`repro.obs.tracing.Tracer` instance nests the request's
        spans under the caller's, ``None`` defers to the engine default.
        """
        method_policy = resolve_policy(policy, allow_brute_force)
        with self._request_scope(trace, "batch") as scope:
            version = self._note_version(database)
            plan = build_plan(
                database,
                [PlanRequest(query, grounding)],
                exogenous_relations=exogenous_relations,
                policy=method_policy,
                store=self.store,
                include_bundles=self.executor.jobs > 1,
                bundle_cache=pool if pool is not None else self.component_cache,
                sample_strata=self.sample_strata,
            )
            scope.plan = plan
            self._note_plan(plan)
            planned = plan.requests[0]
            if scope.tracer is not None:
                scope.span.set("fingerprint", _tracing.label(planned.key))
            if planned.node_id is None:
                scope.span.set("pruned", True)
                return self._finish(
                    plan.satisfied[planned.key], database, from_cache=True
                )
            results = self._execute(plan, pool, version)
            return self._finish(
                results[planned.node_id], database, from_cache=False
            )

    def batch_answers(
        self,
        database: Database,
        query: ConjunctiveQuery,
        answers: Iterable[tuple[Constant, ...]] | None = None,
        *,
        exogenous_relations: AbstractSet[str] | None = None,
        policy: MethodPolicy | str | None = None,
        allow_brute_force: bool | None = None,
        trace: "bool | _tracing.Tracer | None" = None,
    ) -> AnswerBatchResult:
        """One plan covering every grounding ``q_t`` of a non-Boolean query.

        ``answers`` defaults to every candidate answer of ``query``
        (tuples reachable under *some* endogenous subset); the remaining
        options are keyword-only, with ``policy`` carrying the
        method/accuracy request shape exactly as in :meth:`batch`.  The
        planner emits one grounding task per answer and deduplicates
        their top-level component nodes — the DAG form of "untouched
        components are computed once and reused by every answer" — and
        all groundings share one cross-grounding :class:`BundlePool` at
        execution time, on top of the with/without sharing inside each
        batch.
        """
        from repro.shapley.aggregates import candidate_answers
        from repro.shapley.answers import ground_at_answer, head_assignment

        method_policy = resolve_policy(policy, allow_brute_force)
        if query.is_boolean:
            raise ValueError("batch_answers needs a query with head variables")
        with self._request_scope(trace, "batch_answers") as scope:
            if answers is None:
                answers = candidate_answers(database, query)
            requests = []
            for answer in sorted(answers, key=repr):
                answer = tuple(answer)
                if head_assignment(query, answer) is None:
                    # A tuple conflicting with a repeated head variable is
                    # never an answer: q_t is identically false and every
                    # fact's value vanishes.
                    requests.append(PlanRequest(None, answer, inconsistent=True))
                else:
                    requests.append(
                        PlanRequest(ground_at_answer(query, answer), answer)
                    )
            scope.span.set("answers", len(requests))
            version = self._note_version(database)
            plan = build_plan(
                database,
                requests,
                exogenous_relations=exogenous_relations,
                policy=method_policy,
                store=self.store,
                include_bundles=self.executor.jobs > 1,
                bundle_cache=self.component_cache,
                sample_strata=self.sample_strata,
            )
            scope.plan = plan
            self._note_plan(plan)
            pool = BundlePool(self.component_cache)
            results = self._execute(plan, pool, version)
            per_answer: dict[tuple[Constant, ...], BatchResult] = {}
            for planned in plan.requests:
                if planned.node_id is None:
                    result, cached = plan.satisfied[planned.key], True
                else:
                    result, cached = results[planned.node_id], False
                per_answer[planned.request.grounding] = self._finish(
                    result, database, from_cache=cached
                )
            return AnswerBatchResult(per_answer, pool.stats.snapshot())

    def _note_version(self, database: Database) -> tuple:
        """Count distinct database fingerprints for the delta accounting.

        Returns the version fingerprint so each public call computes it
        exactly once (``_execute`` reuses it for the persistent store's
        writer tag instead of re-sorting the whole fact set).
        """
        from repro.engine.fingerprint import fingerprint_database

        version = fingerprint_database(database)
        if version not in self._versions and len(self._versions) < self._versions_cap:
            self._versions.add(version)
            self.delta_stats.versions_seen += 1
        return version

    def _note_plan(self, plan: Plan) -> None:
        """Fold one plan's accounting into the engine-level counters."""
        self.planner_stats.merge(plan.stats)
        self.delta_stats.facts_zero_filled += plan.zero_filled
        self.sample_stats.merge(plan.sample)

    def _execute(
        self, plan: Plan, pool: BundlePool | None, version: tuple | None = None
    ) -> dict[tuple, BatchResult]:
        """Run a plan's tasks and write fresh results back to the store.

        Fresh results are stored as their *projection* to the request's
        relevant endogenous facts, under the relevance-scoped key — the
        form every database version can inflate back from.  When a
        persistent store is attached, entries are tagged with the
        database ``version`` fingerprint that wrote them so superseded
        versions can be retired (evicted first) later.
        """
        cache = pool if pool is not None else self.component_cache
        if version is not None and (
            self.persistent is not None or self.shared is not None
        ):
            from repro.engine.persistent import digest_key

            writer = digest_key(version)
            if self.persistent is not None:
                self.persistent.writer_version = writer
            if self.shared is not None and hasattr(self.shared, "writer_version"):
                self.shared.writer_version = writer
        reused_before = cache.stats.hits
        dirty_before = cache.stats.misses
        with _tracing.maybe_span(
            _tracing.ACTIVE,
            "execute",
            tasks=len(plan.tasks),
            bundles=len(plan.bundles),
        ) as span:
            results, stats = self.executor.execute(plan, cache)
            span.set("shipped", stats.shipped)
            span.set("fallbacks", stats.fallbacks)
        self.executor_stats.merge(stats)
        self.delta_stats.components_reused += cache.stats.hits - reused_before
        self.delta_stats.components_dirty += (
            cache.stats.misses - dirty_before + stats.bundle_tasks
        )
        for task in plan.tasks:
            if task.sample_spec is not None:
                state = results[task.node_id].sample_state
                if state is not None:
                    prior = task.sample_spec.prior
                    self.sample_stats.fresh_rounds += state.rounds - (
                        prior.rounds if prior else 0
                    )
                    self.sample_stats.evaluations += state.evaluations - (
                        prior.evaluations if prior else 0
                    )
                    # The resumable sampler state, under its
                    # policy-independent key: any future contract over
                    # this request refines from here.
                    self.store.put(task.sample_spec.state_key, state)
            if task.key is not None:
                self.store.put(
                    task.key, project_result(results[task.node_id], task.relevant)
                )
        return results

    def _finish(
        self, result: BatchResult, database: Database, from_cache: bool
    ) -> BatchResult:
        """Widen a sampled core to this version, then publish.

        Exact results always cover the full endogenous set; sampled
        results are computed on the request's relevant slice and are
        zero-filled (null players have exactly zero Shapley value) back
        to the database's endogenous facts here.
        """
        if result.estimate is not None and len(result.shapley) < len(
            database.endogenous
        ):
            result, filled = inflate_result(result, database.endogenous)
            self.delta_stats.facts_zero_filled += filled
        return self._public(result, from_cache)

    @staticmethod
    def _public(result: BatchResult, from_cache: bool) -> BatchResult:
        """A caller-facing copy: mutating it must not corrupt the store.

        The copy also normalizes both mappings to the canonical fact
        ordering (sorted by ``repr``), so every path out of the engine —
        fresh, memory-cached, or disk-cached, serial or sharded —
        iterates identically.  The transport-only sampler state is
        stripped: callers resume through the store, not through result
        objects.
        """
        return replace(
            result,
            shapley={
                item: result.shapley[item]
                for item in sorted(result.shapley, key=repr)
            },
            banzhaf={
                item: result.banzhaf[item]
                for item in sorted(result.banzhaf, key=repr)
            },
            from_cache=from_cache,
            sample_state=None,
        )

    def shapley_all(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None = None,
        *,
        policy: MethodPolicy | str | None = None,
        allow_brute_force: bool | None = None,
    ) -> dict[Fact, "Fraction"]:
        return dict(
            self.batch(
                database,
                query,
                exogenous_relations=exogenous_relations,
                policy=policy,
                allow_brute_force=allow_brute_force,
            ).shapley
        )

    def banzhaf_all(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None = None,
        *,
        policy: MethodPolicy | str | None = None,
        allow_brute_force: bool | None = None,
    ) -> dict[Fact, "Fraction"]:
        return dict(
            self.batch(
                database,
                query,
                exogenous_relations=exogenous_relations,
                policy=policy,
                allow_brute_force=allow_brute_force,
            ).banzhaf
        )

    def refine(
        self,
        database: Database,
        query: BooleanQuery,
        *,
        exogenous_relations: AbstractSet[str] | None = None,
        grounding: tuple[Constant, ...] | None = None,
        epsilon: float | None = None,
        delta: float | None = None,
        trace: "bool | _tracing.Tracer | None" = None,
    ) -> BatchResult:
        """Tighten a sampled request's bound from its stored state.

        Resumes the request's permutation stream where the stored
        :class:`repro.shapley.sampling.SampleState` left off and runs
        only the rounds the new contract still needs — never restarting.
        ``epsilon`` defaults to *half* the currently achieved bound
        (which costs 4x the stored rounds — the Hoeffding count is
        quadratic in ``1/epsilon``); ``delta`` defaults to the stored
        request's confidence or the policy default.  Without any stored
        state this is simply a fresh sampled batch under the (given or
        default) contract.
        """
        from repro.engine.fingerprint import (
            fingerprint_request,
            fingerprint_sample_state,
        )
        from repro.engine.policy import DEFAULT_DELTA, DEFAULT_EPSILON
        from repro.shapley.sampling import SampleState, achieved_epsilon

        confidence = DEFAULT_DELTA if delta is None else float(delta)
        target = epsilon
        if target is None:
            base_key = fingerprint_request(
                database, query, exogenous_relations, grounding
            )
            state_key = fingerprint_sample_state(base_key)
            if self.sample_strata != 1:
                # Mirror the planner: stratified streams live under a
                # strata-suffixed state key.
                state_key = (*state_key, ("strata", self.sample_strata))
            state = self.store.get(state_key)
            if isinstance(state, SampleState) and state.rounds >= 1:
                target = achieved_epsilon(4 * state.rounds, confidence)
            else:
                target = DEFAULT_EPSILON
            target = min(max(target, 1e-9), 0.999)
        return self.batch(
            database,
            query,
            exogenous_relations=exogenous_relations,
            grounding=grounding,
            policy=MethodPolicy("sampled", epsilon=target, delta=confidence),
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Fingerprint hooks (the serving layer keys coalescing on these)
    # ------------------------------------------------------------------
    def fingerprint(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None = None,
        grounding: tuple[Constant, ...] | None = None,
    ) -> tuple:
        """The canonical plan fingerprint of one :meth:`batch` request.

        Exactly the key the planner uses for its result nodes.  Since the
        delta-aware refactor this key is *relevance-scoped*: two database
        versions whose relevant slices coincide share it.  A coalescing
        layer must therefore pin the version alongside it — the daemon
        adds the content-addressed handle to every coalescing key — so
        that a leader's response (which carries one version's full fact
        set) is never shared across versions.
        """
        from repro.engine.fingerprint import fingerprint_request

        return fingerprint_request(database, query, exogenous_relations, grounding)

    def fingerprint_answers(
        self,
        database: Database,
        query: ConjunctiveQuery,
        answers: Iterable[tuple[Constant, ...]] | None = None,
        exogenous_relations: AbstractSet[str] | None = None,
    ) -> tuple:
        """The canonical fingerprint of one :meth:`batch_answers` request.

        The per-grounding request fingerprints ignore the head (they key
        grounded *Boolean* queries), so this whole-request key adds a
        pseudo head atom to the body fingerprint — head variables are
        then canonicalized consistently with the body, and queries that
        differ only in their heads never collide.
        """
        from repro.core.query import Atom
        from repro.engine.fingerprint import (
            fingerprint_atoms,
            fingerprint_database,
            fingerprint_grounding,
        )

        shape = fingerprint_atoms(
            tuple(query.atoms) + (Atom("__head__", tuple(query.head)),)
        )
        relations = (
            None
            if exogenous_relations is None
            else tuple(sorted(exogenous_relations))
        )
        groundings = (
            None
            if answers is None
            else tuple(
                sorted(
                    (fingerprint_grounding(tuple(answer)) for answer in answers),
                    key=repr,
                )
            )
        )
        return (
            "answers",
            fingerprint_database(database),
            shape,
            relations,
            groundings,
        )

    def counters(self) -> dict[str, int]:
        """A flat, JSON-ready snapshot of every stats counter.

        Keys are ``layer.field`` (``store.hits``, ``planner.pruned``,
        ``executor.shipped``, ...).  Serving layers subtract two
        snapshots to report per-request accounting — e.g. "this request
        executed zero new tasks" — without reaching into the dataclasses.
        """
        flat: dict[str, int] = {}
        for layer, snapshot in self.stats.items():
            for name, value in vars(snapshot).items():
                if isinstance(value, int) and not isinstance(value, bool):
                    flat[f"{layer}.{name}"] = value
        return flat

    @property
    def stats(self) -> dict[str, object]:
        """Per-layer accounting snapshot.

        The historical per-cache keys (``components``, ``results``,
        ``persistent``) are kept as aliases; ``planner``, ``store`` and
        ``executor`` report the plan/execute layers: how many plan nodes
        were pruned against how many planned, whether *any* store tier
        held a result, and where the executed tasks actually ran.
        """
        counters: dict[str, object] = {
            "components": self.component_cache.stats.snapshot(),
            "results": self.result_cache.stats.snapshot(),
        }
        if self.persistent is not None:
            counters["persistent"] = self.persistent.stats.snapshot()
        if self.shared is not None:
            counters["shared"] = self.shared.stats.snapshot()
            claim_stats = getattr(self.shared, "claim_stats", None)
            if claim_stats is not None:
                counters["claims"] = claim_stats.snapshot()
        if isinstance(getattr(self.store, "stats", None), CacheStats):
            counters["store"] = self.store.stats.snapshot()
        counters["planner"] = self.planner_stats.snapshot()
        counters["executor"] = self.executor_stats.snapshot()
        counters["delta"] = self.delta_stats.snapshot()
        counters["sampler"] = self.sample_stats.snapshot()
        # Engine-scoped since the per-plan counter scoping: the sum of
        # this engine's per-request deltas, not the process-wide totals
        # (those stay on ``kernels.kernel_stats()`` and the daemon's
        # ``kernel_metrics_document``).
        counters["kernel"] = self.kernel_stats.snapshot()
        return counters

    def retire_version(self, database: Database) -> int:
        """Mark a superseded database version's persistent entries stale.

        Called by the serving layer when ``database`` is replaced by a
        successor (``db_update``): entries the version wrote are
        back-dated so bounded-cache eviction takes them first.  Entries
        still valid across the delta re-earn their stamp on their next
        hit; live-version hot entries are never pushed out by stale
        ones.  Retires through both durable tiers — the per-process
        JSON cache and the fleet-shared store, where one daemon's
        retirement reaches every sibling.  Returns the total number of
        entries retired (0 without a durable store).
        """
        shared_retire = getattr(self.shared, "retire", None)
        if self.persistent is None and not callable(shared_retire):
            return 0
        from repro.engine.fingerprint import fingerprint_database
        from repro.engine.persistent import digest_key

        version = digest_key(fingerprint_database(database))
        retired = 0
        if self.persistent is not None:
            retired += self.persistent.retire(version)
        if callable(shared_retire):
            retired += shared_retire(version)
        return retired

    def clear(self) -> None:
        """Drop all cached entries (statistics are kept).

        Clears the component cache, the result LRU, and — when a custom
        ``store`` exposing ``clear()`` was supplied — that store too.
        The default tiered store intentionally has no ``clear``: its
        memory tier *is* the result LRU cleared above, and the
        persistent tier survives (as it always has) so other processes
        keep their warm entries.
        """
        self.component_cache.clear()
        self.result_cache.clear()
        store_clear = getattr(self.store, "clear", None)
        if callable(store_clear):
            store_clear()


_default: BatchAttributionEngine | None = None


def default_engine() -> BatchAttributionEngine:
    """The process-wide shared engine (shared caches across call sites)."""
    global _default
    if _default is None:
        _default = BatchAttributionEngine()
    return _default


def reset_default_engine() -> None:
    """Forget the process-wide engine; the next call builds a fresh one.

    Registered as an ``os.register_at_fork`` child hook, so a forked
    process — a ``multiprocessing`` worker, a daemonized server child —
    starts with empty per-process caches and zeroed stats instead of
    mutating (and double-counting) the engine state inherited from its
    parent.  ``spawn`` children get this for free by re-importing.
    """
    global _default
    _default = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX everywhere we run
    os.register_at_fork(after_in_child=reset_default_engine)

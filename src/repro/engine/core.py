"""The batch attribution engine: dispatch, caching, and value assembly.

:class:`BatchAttributionEngine` is the front door for all-facts
attribution.  It mirrors the dichotomy dispatch of
:func:`repro.shapley.exact.shapley_value` but computes every endogenous
fact's value in one pass:

1. hierarchical self-join-free CQ¬ → the shared CntSat recursion of
   :mod:`repro.engine.bundles` (Theorem 3.1);
2. self-join-free CQ¬ without a non-hierarchical path w.r.t. the
   exogenous relations → *one* ExoShap rewrite (the seed pipeline
   re-ran the rewrite for every fact) followed by the shared recursion
   (Theorem 4.3);
3. otherwise → coalition enumeration, validated once up front against
   ``MAX_BRUTE_FORCE_PLAYERS``.

Shapley and Banzhaf values fall out of the same per-fact count vectors,
so the engine always materializes both.  Results and per-component
bundles are memoized in bounded LRU caches; ``stats`` exposes hit/miss
accounting for observability and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import TYPE_CHECKING, AbstractSet, Callable, Iterable, Mapping

from repro.core.database import Database
from repro.core.errors import IntractableQueryError
from repro.core.facts import Constant, Fact
from repro.core.gaifman import infer_exogenous_relations
from repro.core.hierarchy import is_hierarchical
from repro.core.paths import has_non_hierarchical_path
from repro.core.query import BooleanQuery, ConjunctiveQuery
from repro.engine.bundles import BatchVectors, batch_count_vectors
from repro.engine.cache import BundlePool, CacheStats, LRUCache
from repro.engine.fingerprint import fingerprint_request
from repro.shapley.brute_force import MAX_BRUTE_FORCE_PLAYERS
from repro.util.combinatorics import shapley_coefficient

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.persistent import PersistentResultCache


@dataclass(frozen=True)
class BatchResult:
    """All-facts attribution values plus provenance of the computation.

    The ``shapley`` and ``banzhaf`` mappings iterate their facts in the
    library's canonical order — sorted by ``repr`` — so callers observe
    one deterministic, documented ordering regardless of which algorithm
    or cache produced the result.
    """

    shapley: Mapping[Fact, Fraction]
    banzhaf: Mapping[Fact, Fraction]
    method: str
    player_count: int
    from_cache: bool = False


@dataclass(frozen=True)
class AnswerBatchResult:
    """Per-answer batch results for the groundings of one non-Boolean query.

    ``per_answer`` maps each answer tuple to the :class:`BatchResult` of
    its grounded Boolean query ``q_t``; answers iterate sorted by
    ``repr``.  ``pool_stats`` reports how often the cross-grounding
    bundle pool shared component work between answers.
    """

    per_answer: Mapping[tuple[Constant, ...], BatchResult]
    pool_stats: CacheStats = field(default_factory=CacheStats)

    def aggregate(
        self,
        value_of: Callable[[tuple[Constant, ...]], Fraction | int],
        measure: str = "shapley",
    ) -> dict[Fact, Fraction]:
        """Linearity: ``Σ_t value_of(t) · measure(D, q_t, f)`` per fact."""
        if measure not in ("shapley", "banzhaf"):
            raise ValueError(f"unknown measure {measure!r}")
        totals: dict[Fact, Fraction] = {}
        for answer, result in self.per_answer.items():
            weight = Fraction(value_of(answer))
            if not weight:
                continue
            for item, value in getattr(result, measure).items():
                totals[item] = totals.get(item, Fraction(0)) + weight * value
        return {item: totals[item] for item in sorted(totals, key=repr)}


class BatchAttributionEngine:
    """Computes Shapley/Banzhaf values for all endogenous facts at once.

    Instances hold two bounded LRU caches: a *result* cache keyed on the
    whole ``(database, query, X)`` request, and a *component* cache keyed
    on ``(component fingerprint, scoped facts)`` that lets overlapping
    requests share per-component count bundles.  Engines are cheap to
    construct; share one instance (see :func:`default_engine`) to share
    the caches.
    """

    def __init__(
        self,
        component_cache_size: int = 512,
        result_cache_size: int = 128,
        persistent: "PersistentResultCache | None" = None,
    ) -> None:
        self.component_cache: LRUCache = LRUCache(component_cache_size)
        self.result_cache: LRUCache = LRUCache(result_cache_size)
        self.persistent = persistent

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def batch(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None = None,
        allow_brute_force: bool = True,
        grounding: tuple[Constant, ...] | None = None,
        pool: BundlePool | None = None,
    ) -> BatchResult:
        """Shapley and Banzhaf values of every endogenous fact of ``D``.

        ``grounding`` carries the head constants when ``query`` is the
        grounding ``q_t`` of a non-Boolean query at answer ``t``; it is
        part of the cache key, so distinct answers can never collide even
        when their grounded atom sets coincide.  ``pool`` lets an answer
        batch share component bundles across groundings
        (see :meth:`batch_answers`).
        """
        key = fingerprint_request(database, query, exogenous_relations, grounding)
        cached = self.result_cache.get(key)
        if cached is None and self.persistent is not None:
            cached = self.persistent.get(key)
            if cached is not None:
                # Promote the disk hit so repeats stay in memory.
                self.result_cache.put(key, cached)
        if cached is not None:
            if not allow_brute_force and cached.method == "brute-force":
                # A warm cache must not bypass the caller's polynomial-only
                # contract: honor the flag exactly as a cold call would.
                raise IntractableQueryError(
                    f"no polynomial batch algorithm applies to {query!r} and"
                    f" brute force over {cached.player_count} endogenous"
                    " facts is disabled"
                )
            return self._public(cached, from_cache=True)
        result = self._compute(
            database, query, exogenous_relations, allow_brute_force, pool
        )
        self.result_cache.put(key, result)
        if self.persistent is not None:
            self.persistent.put(key, result)
        return self._public(result, from_cache=False)

    def batch_answers(
        self,
        database: Database,
        query: ConjunctiveQuery,
        answers: Iterable[tuple[Constant, ...]] | None = None,
        exogenous_relations: AbstractSet[str] | None = None,
        allow_brute_force: bool = True,
    ) -> AnswerBatchResult:
        """One batch per grounding ``q_t`` of a non-Boolean query.

        ``answers`` defaults to every candidate answer of ``query``
        (tuples reachable under *some* endogenous subset).  All
        groundings share one cross-grounding :class:`BundlePool`: their
        Gaifman components differ only where the head constants appear,
        so the untouched components are computed once and reused by every
        answer — on top of the with/without sharing inside each batch.
        """
        from repro.shapley.aggregates import candidate_answers
        from repro.shapley.answers import ground_at_answer, head_assignment

        if query.is_boolean:
            raise ValueError("batch_answers needs a query with head variables")
        if answers is None:
            answers = candidate_answers(database, query)
        pool = BundlePool(self.component_cache)
        per_answer: dict[tuple[Constant, ...], BatchResult] = {}
        for answer in sorted(answers, key=repr):
            answer = tuple(answer)
            if head_assignment(query, answer) is None:
                # A tuple conflicting with a repeated head variable is
                # never an answer: q_t is identically false and every
                # fact's value vanishes.
                zeros = {
                    item: Fraction(0)
                    for item in sorted(database.endogenous, key=repr)
                }
                per_answer[answer] = BatchResult(
                    zeros, dict(zeros), "inconsistent", len(zeros)
                )
                continue
            per_answer[answer] = self.batch(
                database,
                ground_at_answer(query, answer),
                exogenous_relations,
                allow_brute_force,
                grounding=answer,
                pool=pool,
            )
        return AnswerBatchResult(per_answer, pool.stats.snapshot())

    @staticmethod
    def _public(result: BatchResult, from_cache: bool) -> BatchResult:
        """A caller-facing copy: mutating it must not corrupt the cache.

        The copy also normalizes both mappings to the canonical fact
        ordering (sorted by ``repr``), so every path out of the engine —
        fresh, memory-cached, or disk-cached — iterates identically.
        """
        return replace(
            result,
            shapley={
                item: result.shapley[item]
                for item in sorted(result.shapley, key=repr)
            },
            banzhaf={
                item: result.banzhaf[item]
                for item in sorted(result.banzhaf, key=repr)
            },
            from_cache=from_cache,
        )

    def shapley_all(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None = None,
        allow_brute_force: bool = True,
    ) -> dict[Fact, Fraction]:
        return dict(
            self.batch(database, query, exogenous_relations, allow_brute_force).shapley
        )

    def banzhaf_all(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None = None,
        allow_brute_force: bool = True,
    ) -> dict[Fact, Fraction]:
        return dict(
            self.batch(database, query, exogenous_relations, allow_brute_force).banzhaf
        )

    @property
    def stats(self) -> dict[str, CacheStats]:
        """Snapshot of per-cache hit/miss/eviction counters."""
        counters = {
            "components": self.component_cache.stats.snapshot(),
            "results": self.result_cache.stats.snapshot(),
        }
        if self.persistent is not None:
            counters["persistent"] = self.persistent.stats.snapshot()
        return counters

    def clear(self) -> None:
        """Drop all cached entries (statistics are kept)."""
        self.component_cache.clear()
        self.result_cache.clear()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _compute(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None,
        allow_brute_force: bool,
        pool: BundlePool | None = None,
    ) -> BatchResult:
        players = len(database.endogenous)
        bundle_cache = self.component_cache if pool is None else pool
        if players == 0:
            return BatchResult({}, {}, "empty", 0)
        if isinstance(query, ConjunctiveQuery):
            boolean = query.as_boolean()
            if exogenous_relations is None:
                exogenous_relations = infer_exogenous_relations(boolean, database)
            if boolean.is_self_join_free:
                if is_hierarchical(boolean):
                    vectors = batch_count_vectors(database, boolean, bundle_cache)
                    return self._from_vectors(vectors, "cntsat")
                if not has_non_hierarchical_path(boolean, exogenous_relations):
                    from repro.shapley.exoshap import rewrite_to_hierarchical

                    rewrite = rewrite_to_hierarchical(
                        database, boolean, exogenous_relations
                    )
                    vectors = batch_count_vectors(
                        rewrite.database, rewrite.query, bundle_cache
                    )
                    return self._from_vectors(vectors, "exoshap")
        if not allow_brute_force:
            raise IntractableQueryError(
                f"no polynomial batch algorithm applies to {query!r} and brute"
                f" force over {players} endogenous facts is disabled"
            )
        if players > MAX_BRUTE_FORCE_PLAYERS:
            raise IntractableQueryError(
                f"no polynomial batch algorithm applies to {query!r} and brute"
                f" force over {players} endogenous facts would enumerate"
                f" 2^{players} coalitions (limit: {MAX_BRUTE_FORCE_PLAYERS})"
            )
        from repro.shapley.banzhaf import banzhaf_all_brute_force
        from repro.shapley.brute_force import shapley_all_brute_force

        return BatchResult(
            shapley_all_brute_force(database, query),
            banzhaf_all_brute_force(database, query),
            "brute-force",
            players,
        )

    def _from_vectors(self, vectors: BatchVectors, method: str) -> BatchResult:
        """Lemma 3.2 assembly: weighted sums of the per-fact vector deltas."""
        players = vectors.total_players
        shapley: dict[Fact, Fraction] = {
            item: Fraction(0) for item in vectors.zero_facts
        }
        banzhaf = dict(shapley)
        denominator = 2 ** (players - 1)
        for item, (sat_exo, sat_del) in vectors.per_fact.items():
            value = Fraction(0)
            difference_total = 0
            for k in range(players):
                difference = sat_exo[k] - sat_del[k]
                if difference:
                    value += shapley_coefficient(players, k) * difference
                    difference_total += difference
            shapley[item] = value
            banzhaf[item] = Fraction(difference_total, denominator)
        return BatchResult(shapley, banzhaf, method, players)


_default: BatchAttributionEngine | None = None


def default_engine() -> BatchAttributionEngine:
    """The process-wide shared engine (shared caches across call sites)."""
    global _default
    if _default is None:
        _default = BatchAttributionEngine()
    return _default

"""The batch attribution engine: dispatch, caching, and value assembly.

:class:`BatchAttributionEngine` is the front door for all-facts
attribution.  It mirrors the dichotomy dispatch of
:func:`repro.shapley.exact.shapley_value` but computes every endogenous
fact's value in one pass:

1. hierarchical self-join-free CQ¬ → the shared CntSat recursion of
   :mod:`repro.engine.bundles` (Theorem 3.1);
2. self-join-free CQ¬ without a non-hierarchical path w.r.t. the
   exogenous relations → *one* ExoShap rewrite (the seed pipeline
   re-ran the rewrite for every fact) followed by the shared recursion
   (Theorem 4.3);
3. otherwise → coalition enumeration, validated once up front against
   ``MAX_BRUTE_FORCE_PLAYERS``.

Shapley and Banzhaf values fall out of the same per-fact count vectors,
so the engine always materializes both.  Results and per-component
bundles are memoized in bounded LRU caches; ``stats`` exposes hit/miss
accounting for observability and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import AbstractSet, Mapping

from repro.core.database import Database
from repro.core.errors import IntractableQueryError
from repro.core.facts import Fact
from repro.core.gaifman import infer_exogenous_relations
from repro.core.hierarchy import is_hierarchical
from repro.core.paths import has_non_hierarchical_path
from repro.core.query import BooleanQuery, ConjunctiveQuery
from repro.engine.bundles import BatchVectors, batch_count_vectors
from repro.engine.cache import CacheStats, LRUCache
from repro.engine.fingerprint import fingerprint_request
from repro.shapley.brute_force import MAX_BRUTE_FORCE_PLAYERS
from repro.util.combinatorics import shapley_coefficient


@dataclass(frozen=True)
class BatchResult:
    """All-facts attribution values plus provenance of the computation."""

    shapley: Mapping[Fact, Fraction]
    banzhaf: Mapping[Fact, Fraction]
    method: str
    player_count: int
    from_cache: bool = False


class BatchAttributionEngine:
    """Computes Shapley/Banzhaf values for all endogenous facts at once.

    Instances hold two bounded LRU caches: a *result* cache keyed on the
    whole ``(database, query, X)`` request, and a *component* cache keyed
    on ``(component fingerprint, scoped facts)`` that lets overlapping
    requests share per-component count bundles.  Engines are cheap to
    construct; share one instance (see :func:`default_engine`) to share
    the caches.
    """

    def __init__(
        self,
        component_cache_size: int = 512,
        result_cache_size: int = 128,
    ) -> None:
        self.component_cache: LRUCache = LRUCache(component_cache_size)
        self.result_cache: LRUCache = LRUCache(result_cache_size)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def batch(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None = None,
        allow_brute_force: bool = True,
    ) -> BatchResult:
        """Shapley and Banzhaf values of every endogenous fact of ``D``."""
        key = fingerprint_request(database, query, exogenous_relations)
        cached = self.result_cache.get(key)
        if cached is not None:
            if not allow_brute_force and cached.method == "brute-force":
                # A warm cache must not bypass the caller's polynomial-only
                # contract: honor the flag exactly as a cold call would.
                raise IntractableQueryError(
                    f"no polynomial batch algorithm applies to {query!r} and"
                    f" brute force over {cached.player_count} endogenous"
                    " facts is disabled"
                )
            return self._public(cached, from_cache=True)
        result = self._compute(database, query, exogenous_relations, allow_brute_force)
        self.result_cache.put(key, result)
        return self._public(result, from_cache=False)

    @staticmethod
    def _public(result: BatchResult, from_cache: bool) -> BatchResult:
        """A caller-facing copy: mutating it must not corrupt the cache."""
        return replace(
            result,
            shapley=dict(result.shapley),
            banzhaf=dict(result.banzhaf),
            from_cache=from_cache,
        )

    def shapley_all(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None = None,
        allow_brute_force: bool = True,
    ) -> dict[Fact, Fraction]:
        return dict(
            self.batch(database, query, exogenous_relations, allow_brute_force).shapley
        )

    def banzhaf_all(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None = None,
        allow_brute_force: bool = True,
    ) -> dict[Fact, Fraction]:
        return dict(
            self.batch(database, query, exogenous_relations, allow_brute_force).banzhaf
        )

    @property
    def stats(self) -> dict[str, CacheStats]:
        """Snapshot of per-cache hit/miss/eviction counters."""
        return {
            "components": self.component_cache.stats.snapshot(),
            "results": self.result_cache.stats.snapshot(),
        }

    def clear(self) -> None:
        """Drop all cached entries (statistics are kept)."""
        self.component_cache.clear()
        self.result_cache.clear()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _compute(
        self,
        database: Database,
        query: BooleanQuery,
        exogenous_relations: AbstractSet[str] | None,
        allow_brute_force: bool,
    ) -> BatchResult:
        players = len(database.endogenous)
        if players == 0:
            return BatchResult({}, {}, "empty", 0)
        if isinstance(query, ConjunctiveQuery):
            boolean = query.as_boolean()
            if exogenous_relations is None:
                exogenous_relations = infer_exogenous_relations(boolean, database)
            if boolean.is_self_join_free:
                if is_hierarchical(boolean):
                    vectors = batch_count_vectors(
                        database, boolean, self.component_cache
                    )
                    return self._from_vectors(vectors, "cntsat")
                if not has_non_hierarchical_path(boolean, exogenous_relations):
                    from repro.shapley.exoshap import rewrite_to_hierarchical

                    rewrite = rewrite_to_hierarchical(
                        database, boolean, exogenous_relations
                    )
                    vectors = batch_count_vectors(
                        rewrite.database, rewrite.query, self.component_cache
                    )
                    return self._from_vectors(vectors, "exoshap")
        if not allow_brute_force:
            raise IntractableQueryError(
                f"no polynomial batch algorithm applies to {query!r} and brute"
                f" force over {players} endogenous facts is disabled"
            )
        if players > MAX_BRUTE_FORCE_PLAYERS:
            raise IntractableQueryError(
                f"no polynomial batch algorithm applies to {query!r} and brute"
                f" force over {players} endogenous facts would enumerate"
                f" 2^{players} coalitions (limit: {MAX_BRUTE_FORCE_PLAYERS})"
            )
        from repro.shapley.banzhaf import banzhaf_all_brute_force
        from repro.shapley.brute_force import shapley_all_brute_force

        return BatchResult(
            shapley_all_brute_force(database, query),
            banzhaf_all_brute_force(database, query),
            "brute-force",
            players,
        )

    def _from_vectors(self, vectors: BatchVectors, method: str) -> BatchResult:
        """Lemma 3.2 assembly: weighted sums of the per-fact vector deltas."""
        players = vectors.total_players
        shapley: dict[Fact, Fraction] = {
            item: Fraction(0) for item in vectors.zero_facts
        }
        banzhaf = dict(shapley)
        denominator = 2 ** (players - 1)
        for item, (sat_exo, sat_del) in vectors.per_fact.items():
            value = Fraction(0)
            difference_total = 0
            for k in range(players):
                difference = sat_exo[k] - sat_del[k]
                if difference:
                    value += shapley_coefficient(players, k) * difference
                    difference_total += difference
            shapley[item] = value
            banzhaf[item] = Fraction(difference_total, denominator)
        return BatchResult(shapley, banzhaf, method, players)


_default: BatchAttributionEngine | None = None


def default_engine() -> BatchAttributionEngine:
    """The process-wide shared engine (shared caches across call sites)."""
    global _default
    if _default is None:
        _default = BatchAttributionEngine()
    return _default

"""Canonical fingerprints for cache keys.

Two batch requests share work exactly when they agree on the *semantics*
of a subproblem, not on its syntax: variable names are irrelevant, and so
is the order in which atoms or facts are listed.  The fingerprints here
canonicalize both:

* variables are renamed to positional markers in first-occurrence order
  over the canonically sorted atom list (alpha-equivalent subqueries
  collide, as they should);
* fact sets are sorted, so insertion order never splits cache entries.

Every fingerprint is a hashable tuple tree, usable directly as an
:class:`repro.engine.cache.LRUCache` key.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.database import Database
from repro.core.facts import Constant, Fact
from repro.core.query import Atom, BooleanQuery, UnionQuery, Variable


def _atom_skeleton(atom: Atom) -> tuple:
    """Atom shape with variables replaced by a per-atom occurrence pattern.

    Constants keep their repr here (the skeleton is only a *sort key*);
    the rendered fingerprint below keeps the constants themselves so that
    distinct constants with equal reprs can never collide.
    """
    local: dict[Variable, int] = {}
    terms = []
    for term in atom.terms:
        if isinstance(term, Variable):
            terms.append(("var", str(local.setdefault(term, len(local)))))
        else:
            terms.append(("const", repr(term)))
    return (atom.relation, atom.negated, tuple(terms))


def fingerprint_atoms(atoms: Iterable[Atom]) -> tuple:
    """Order- and alpha-invariant fingerprint of a set of atoms.

    Atoms are sorted by their local skeleton, then variables are numbered
    globally in first-occurrence order over the sorted list.
    """
    ordered = sorted(atoms, key=_atom_skeleton)
    names: dict[Variable, int] = {}
    rendered = []
    for atom in ordered:
        terms = []
        for term in atom.terms:
            if isinstance(term, Variable):
                terms.append(("var", names.setdefault(term, len(names))))
            else:
                terms.append(("const", term))
        rendered.append((atom.relation, atom.negated, tuple(terms)))
    return tuple(rendered)


def fingerprint_facts(facts: Iterable[Fact]) -> tuple:
    """Order-invariant fingerprint of a set of facts.

    The facts themselves are the key material (they are hashable), sorted
    by repr only to erase iteration order.
    """
    return tuple(sorted(facts, key=repr))


def fingerprint_query(query: BooleanQuery) -> tuple:
    """Fingerprint of a Boolean query (CQ¬ or UCQ¬)."""
    if isinstance(query, UnionQuery):
        return (
            "ucq",
            tuple(
                sorted(
                    (fingerprint_atoms(disjunct.atoms) for disjunct in query.disjuncts),
                    key=repr,
                )
            ),
        )
    return ("cq", fingerprint_atoms(query.atoms))


def fingerprint_database(database: Database) -> tuple:
    """Fingerprint of a database's endogenous/exogenous split."""
    return (
        fingerprint_facts(database.endogenous),
        fingerprint_facts(database.exogenous),
    )


def fingerprint_component(
    atoms: Iterable[Atom],
    exogenous: Iterable[Fact],
    endogenous: Iterable[Fact],
) -> tuple:
    """Cache key for one variable-connected component with its scoped facts.

    This is the "(component fingerprint, query fingerprint)" key of the
    engine: the atom fingerprint pins down the component's sub-query up to
    renaming, and the fact fingerprints pin down the data slice it owns.
    """
    return (
        fingerprint_atoms(atoms),
        fingerprint_facts(exogenous),
        fingerprint_facts(endogenous),
    )


def fingerprint_grounding(answer: tuple[Constant, ...]) -> tuple:
    """Type-tagged fingerprint of the head constants of a grounded query.

    Two groundings ``q_t`` and ``q_t'`` of the same non-Boolean query can
    substitute into *identical* atom sets (e.g. a repeated head variable,
    or constants that compare equal across Python types such as ``1`` and
    ``True``) while asking about different answer tuples.  The grounding
    fingerprint keeps the answer itself — with each constant tagged by its
    concrete type — so such requests can never collide in the result or
    persistent caches.
    """
    return tuple(
        ("ground", type(value).__name__, value) for value in answer
    )


def fingerprint_request(
    database: Database,
    query: BooleanQuery,
    exogenous_relations: Iterable[str] | None,
    grounding: tuple[Constant, ...] | None = None,
) -> tuple:
    """Cache key for a whole batch request.

    ``grounding`` carries the head constants when ``query`` was obtained
    by grounding a non-Boolean query at an answer tuple (see
    :func:`fingerprint_grounding`); ``None`` marks a plain Boolean
    request.
    """
    relations = (
        None
        if exogenous_relations is None
        else tuple(sorted(exogenous_relations))
    )
    return (
        fingerprint_database(database),
        fingerprint_query(query),
        relations,
        None if grounding is None else fingerprint_grounding(grounding),
    )


__all__ = [
    "fingerprint_atoms",
    "fingerprint_component",
    "fingerprint_database",
    "fingerprint_facts",
    "fingerprint_grounding",
    "fingerprint_query",
    "fingerprint_request",
]

"""Canonical fingerprints for cache keys.

Two batch requests share work exactly when they agree on the *semantics*
of a subproblem, not on its syntax: variable names are irrelevant, and so
is the order in which atoms or facts are listed.  The fingerprints here
canonicalize both:

* variables are renamed to positional markers in first-occurrence order
  over the canonically sorted atom list (alpha-equivalent subqueries
  collide, as they should);
* fact sets are sorted, so insertion order never splits cache entries.

Since the delta-aware refactor (PR 5) the *request* fingerprint is also
**relevance-scoped**: only facts that can match some atom of the query —
same relation and arity, constants agreeing positionally, repeated
variables satisfiable — are key material.  A fact outside that slice is a
*null player* (it can never influence satisfaction under any endogenous
subset, so its Shapley and Banzhaf values are zero and, by dummy
invariance, it does not perturb any other fact's value).  Two database
versions that differ only in irrelevant facts therefore share one store
entry, which is what lets the engine follow a mutating database: a fact
delta only invalidates the requests — and, one level down, the Gaifman
components — it actually touches.

Every fingerprint is a hashable tuple tree, usable directly as an
:class:`repro.engine.cache.LRUCache` key.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.database import Database
from repro.core.facts import Constant, Fact
from repro.core.query import Atom, BooleanQuery, UnionQuery, Variable


def _atom_skeleton(atom: Atom) -> tuple:
    """Atom shape with variables replaced by a per-atom occurrence pattern.

    Constants keep their repr here (the skeleton is only a *sort key*);
    the rendered fingerprint below keeps the constants themselves so that
    distinct constants with equal reprs can never collide.
    """
    local: dict[Variable, int] = {}
    terms = []
    for term in atom.terms:
        if isinstance(term, Variable):
            terms.append(("var", str(local.setdefault(term, len(local)))))
        else:
            terms.append(("const", repr(term)))
    return (atom.relation, atom.negated, tuple(terms))


def fingerprint_atoms(atoms: Iterable[Atom]) -> tuple:
    """Order- and alpha-invariant fingerprint of a set of atoms.

    Atoms are sorted by their local skeleton, then variables are numbered
    globally in first-occurrence order over the sorted list.
    """
    ordered = sorted(atoms, key=_atom_skeleton)
    names: dict[Variable, int] = {}
    rendered = []
    for atom in ordered:
        terms = []
        for term in atom.terms:
            if isinstance(term, Variable):
                terms.append(("var", names.setdefault(term, len(names))))
            else:
                terms.append(("const", term))
        rendered.append((atom.relation, atom.negated, tuple(terms)))
    return tuple(rendered)


def fingerprint_facts(facts: Iterable[Fact]) -> tuple:
    """Order-invariant fingerprint of a set of facts.

    The facts themselves are the key material (they are hashable), sorted
    by repr only to erase iteration order.
    """
    return tuple(sorted(facts, key=repr))


def fingerprint_query(query: BooleanQuery) -> tuple:
    """Fingerprint of a Boolean query (CQ¬ or UCQ¬)."""
    if isinstance(query, UnionQuery):
        return (
            "ucq",
            tuple(
                sorted(
                    (fingerprint_atoms(disjunct.atoms) for disjunct in query.disjuncts),
                    key=repr,
                )
            ),
        )
    return ("cq", fingerprint_atoms(query.atoms))


def fingerprint_database(database: Database) -> tuple:
    """Fingerprint of a database's endogenous/exogenous split."""
    return (
        fingerprint_facts(database.endogenous),
        fingerprint_facts(database.exogenous),
    )


def fingerprint_component(
    atoms: Iterable[Atom],
    exogenous: Iterable[Fact],
    endogenous: Iterable[Fact],
) -> tuple:
    """Cache key for one variable-connected component with its scoped facts.

    This is the "(component fingerprint, query fingerprint)" key of the
    engine: the atom fingerprint pins down the component's sub-query up to
    renaming, and the fact fingerprints pin down the data slice it owns.
    """
    return (
        fingerprint_atoms(atoms),
        fingerprint_facts(exogenous),
        fingerprint_facts(endogenous),
    )


def fingerprint_grounding(answer: tuple[Constant, ...]) -> tuple:
    """Type-tagged fingerprint of the head constants of a grounded query.

    Two groundings ``q_t`` and ``q_t'`` of the same non-Boolean query can
    substitute into *identical* atom sets (e.g. a repeated head variable,
    or constants that compare equal across Python types such as ``1`` and
    ``True``) while asking about different answer tuples.  The grounding
    fingerprint keeps the answer itself — with each constant tagged by its
    concrete type — so such requests can never collide in the result or
    persistent caches.
    """
    return tuple(
        ("ground", type(value).__name__, value) for value in answer
    )


def query_atoms(query: BooleanQuery) -> tuple[Atom, ...]:
    """Every atom a query can map onto facts (all disjuncts for a UCQ)."""
    if isinstance(query, UnionQuery):
        return tuple(atom for disjunct in query.disjuncts for atom in disjunct.atoms)
    return tuple(query.atoms)


def relevant_facts(
    database: Database, query: BooleanQuery
) -> tuple[frozenset[Fact], frozenset[Fact]]:
    """The ``(endogenous, exogenous)`` facts that can influence ``query``.

    A fact is *relevant* when some atom of the query matches it
    (:meth:`repro.core.query.Atom.matches`): same relation and arity,
    constants agreeing positionally, repeated variables satisfiable.
    Everything else is a null player — it can never witness or block an
    atom under any assignment, so satisfaction (and hence every count
    vector and attribution value) is a function of the relevant slice
    alone.  The test is deliberately conservative under cross-type
    equality (``1 == True``): a fact is only ever *included* spuriously,
    which shrinks reuse but can never corrupt a result.
    """
    atoms_by_relation: dict[str, list[Atom]] = {}
    for atom in query_atoms(query):
        atoms_by_relation.setdefault(atom.relation, []).append(atom)

    def matched(item: Fact) -> bool:
        return any(
            atom.matches(item) for atom in atoms_by_relation.get(item.relation, ())
        )

    return (
        frozenset(item for item in database.endogenous if matched(item)),
        frozenset(item for item in database.exogenous if matched(item)),
    )


def fingerprint_request(
    database: Database,
    query: BooleanQuery,
    exogenous_relations: Iterable[str] | None,
    grounding: tuple[Constant, ...] | None = None,
    relevant: tuple[frozenset[Fact], frozenset[Fact]] | None = None,
) -> tuple:
    """Cache key for a whole batch request, scoped to the relevant slice.

    Only the facts of :func:`relevant_facts` are key material, so two
    database *versions* that differ in irrelevant facts share one store
    entry — the cross-version reuse at the heart of the delta-aware
    engine.  Stored values are accordingly the *projection* of the result
    to the relevant facts (see
    :func:`repro.engine.results.project_result`); the planner zero-fills
    the current version's irrelevant endogenous facts on every hit.

    ``grounding`` carries the head constants when ``query`` was obtained
    by grounding a non-Boolean query at an answer tuple (see
    :func:`fingerprint_grounding`); ``None`` marks a plain Boolean
    request.  ``relevant`` lets callers that already computed the
    relevant slice (the planner) skip recomputing it.
    """
    if relevant is None:
        relevant = relevant_facts(database, query)
    endogenous, exogenous = relevant
    relations = (
        None
        if exogenous_relations is None
        else tuple(sorted(exogenous_relations))
    )
    return (
        "relevant",
        (fingerprint_facts(endogenous), fingerprint_facts(exogenous)),
        fingerprint_query(query),
        relations,
        None if grounding is None else fingerprint_grounding(grounding),
    )


def fingerprint_sampled(base_key: tuple, contract: tuple) -> tuple:
    """The store key of a *sampled* result under one accuracy contract.

    Sampled answers are estimates, so they must never be conflated with
    exact results (which live under the bare request key) nor with
    estimates of a different ``(epsilon, delta)`` class — ``contract``
    is :meth:`repro.engine.policy.MethodPolicy.contract`.  Tightening
    the contract therefore misses here by construction and falls
    through to the policy-independent sample state instead.
    """
    return ("sampled", base_key, contract)


def fingerprint_sample_state(base_key: tuple) -> tuple:
    """The store key of a request's resumable sampler state.

    Deliberately *policy-independent*: every accuracy contract over the
    same request extends one permutation stream, so a loose first
    request, a tight refinement, and a post-delta repeat all resume the
    same stored state.
    """
    return ("sample-state", base_key)


__all__ = [
    "fingerprint_atoms",
    "fingerprint_component",
    "fingerprint_database",
    "fingerprint_facts",
    "fingerprint_grounding",
    "fingerprint_query",
    "fingerprint_request",
    "fingerprint_sample_state",
    "fingerprint_sampled",
    "query_atoms",
    "relevant_facts",
]

"""Structural database deltas: the diff layer of the delta-aware engine.

The paper's tractability frontier (CntSat/ExoShap over Gaifman
components) means a fact insertion or deletion only perturbs the
components it touches.  This module makes that observation operational:

* :func:`database_delta` computes the structural diff between two
  databases — facts added, facts removed, and endogenous/exogenous
  *flips* (a fact changing sides shows up as an addition on its new
  side); :func:`apply_delta` replays a diff onto a base version.
* :func:`delta_to_dict` / :func:`delta_from_dict` are the wire and CLI
  form of a diff (the ``db_update`` operation of
  :mod:`repro.server.protocol` and ``--update delta.json``), speaking
  the fact-row dialect of :mod:`repro.io`.
* :func:`delta_touches_query` and :func:`dirty_components` map a diff to
  the work it actually invalidates: whether a request's relevant slice
  moved at all, and which top-level Gaifman components of a query are
  *dirty* (own a touched fact) versus reusable as-is.
* :class:`DeltaStats` is the engine's cross-version accounting —
  distinct versions served, facts zero-filled on cross-version store
  hits, and component lookups that were reused versus recomputed.

Together with the relevance-scoped request fingerprints of
:mod:`repro.engine.fingerprint` this is what lets one warm engine follow
a live, mutating database: an update only re-executes the dirty slice,
everything else is served from the stores across versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.database import Database
from repro.core.facts import Fact
from repro.core.query import BooleanQuery
from repro.engine.fingerprint import query_atoms
from repro.io import fact_from_row, fact_to_row


@dataclass(frozen=True)
class DatabaseDelta:
    """A fact-level diff between a base database and its successor.

    ``added_endogenous`` / ``added_exogenous`` hold the facts present (on
    that side) in the successor but not on the same side of the base —
    including facts that merely *flipped* sides; ``removed`` holds the
    facts present in the base but absent from the successor entirely.
    Applying a delta is therefore "remove, then add (re-labelling on
    conflict)", which :meth:`repro.core.database.Database.add` already
    implements.
    """

    added_endogenous: frozenset[Fact] = frozenset()
    added_exogenous: frozenset[Fact] = frozenset()
    removed: frozenset[Fact] = frozenset()

    def __post_init__(self) -> None:
        overlap = self.added_endogenous & self.added_exogenous
        if overlap:
            raise ValueError(
                f"facts added as both endogenous and exogenous: "
                f"{sorted(map(repr, overlap))}"
            )

    @property
    def facts(self) -> frozenset[Fact]:
        """Every fact the delta mentions (the touched set)."""
        return self.added_endogenous | self.added_exogenous | self.removed

    def __len__(self) -> int:
        return (
            len(self.added_endogenous)
            + len(self.added_exogenous)
            + len(self.removed)
        )

    def __bool__(self) -> bool:
        return len(self) > 0

    def accounting(self, base: Database) -> dict[str, int]:
        """``{added, removed, flipped}`` counts relative to ``base``.

        A *flip* is a fact the base holds on the **other** side; re-adding
        a fact on its current side is a no-op and counts as neither.
        """
        endo_flips = sum(1 for f in self.added_endogenous if base.is_exogenous(f))
        exo_flips = sum(1 for f in self.added_exogenous if base.is_endogenous(f))
        brand_new = sum(
            1
            for item in self.added_endogenous | self.added_exogenous
            if item not in base
        )
        return {
            "added": brand_new,
            "removed": len(self.removed),
            "flipped": endo_flips + exo_flips,
        }


def database_delta(base: Database, successor: Database) -> DatabaseDelta:
    """The structural diff turning ``base`` into ``successor``.

    ``apply_delta(base, database_delta(base, successor))`` reproduces
    ``successor`` exactly (fact sets and endogenous/exogenous labels).
    """
    return DatabaseDelta(
        added_endogenous=successor.endogenous - base.endogenous,
        added_exogenous=successor.exogenous - base.exogenous,
        removed=base.facts - successor.facts,
    )


def apply_delta(base: Database, delta: DatabaseDelta) -> Database:
    """A new database: ``base`` with ``delta`` replayed onto a copy.

    Removing a fact the base does not hold is a :class:`ValueError`
    (rather than ``KeyError``) so the failure round-trips as a typed
    error frame through the attribution service.
    """
    successor = base.copy()
    for item in sorted(delta.removed, key=repr):
        try:
            successor.remove(item)
        except KeyError:
            raise ValueError(
                f"delta removes {item!r}, which the base database does not hold"
            ) from None
    for item in sorted(delta.added_exogenous, key=repr):
        successor.add(item, endogenous=False)
    for item in sorted(delta.added_endogenous, key=repr):
        successor.add(item, endogenous=True)
    return successor


def delta_to_dict(delta: DatabaseDelta) -> dict[str, Any]:
    """The JSON form of a delta (wire protocol, ``--update`` files)."""

    def rows(facts: Iterable[Fact]) -> list[list[Any]]:
        return [fact_to_row(item) for item in sorted(facts, key=repr)]

    return {
        "add_endogenous": rows(delta.added_endogenous),
        "add_exogenous": rows(delta.added_exogenous),
        "remove": rows(delta.removed),
    }


def delta_from_dict(payload: dict[str, Any]) -> DatabaseDelta:
    """Rebuild a delta from :func:`delta_to_dict` output.

    Malformed rows raise :class:`ValueError` so front ends (CLI, daemon)
    report one clear line instead of a traceback.
    """
    if not isinstance(payload, dict):
        raise ValueError("a delta document must be a JSON object")

    def facts(key: str) -> frozenset[Fact]:
        rows = payload.get(key, [])
        if not isinstance(rows, list):
            raise ValueError(f"delta field {key!r} must be a list of fact rows")
        try:
            return frozenset(fact_from_row(row) for row in rows)
        except (TypeError, ValueError) as error:
            raise ValueError(f"malformed fact row under {key!r}: {error}") from None

    return DatabaseDelta(
        added_endogenous=facts("add_endogenous"),
        added_exogenous=facts("add_exogenous"),
        removed=facts("remove"),
    )


def delta_touches_query(delta: DatabaseDelta, query: BooleanQuery) -> bool:
    """Does any touched fact intersect the query's relevant slice?

    ``False`` means every touched fact is a null player for this query:
    the successor's result is the base result with irrelevant endogenous
    additions zero-filled and removals dropped — exactly what the
    relevance-scoped store key serves without recomputing.
    """
    atoms = query_atoms(query)
    return any(atom.matches(item) for item in delta.facts for atom in atoms)


def dirty_components(
    database: Database, query: BooleanQuery, delta: DatabaseDelta
) -> tuple[list[tuple], list[tuple]]:
    """Split a query's top-level components into ``(dirty, clean)``.

    Components are those of ``database`` (the successor version), keyed
    by the same canonical fingerprints the bundle caches use; a component
    is *dirty* when some touched fact matches one of its atoms, so its
    count bundle cannot be reused from the base version.  Everything in
    the clean list keeps its fingerprint across the delta and is served
    from the component caches.
    """
    from repro.engine.bundles import top_level_components

    touched = delta.facts
    dirty: list[tuple] = []
    clean: list[tuple] = []
    for fingerprint, component in top_level_components(database, query):
        atoms = [scoped.atom for scoped in component]
        if any(atom.matches(item) for item in touched for atom in atoms):
            dirty.append(fingerprint)
        else:
            clean.append(fingerprint)
    return dirty, clean


@dataclass
class DeltaStats:
    """Cross-version accounting of the delta-aware engine.

    ``versions_seen`` counts distinct database fingerprints served;
    ``facts_zero_filled`` counts endogenous null players zero-filled
    while inflating relevance-scoped store hits — any hit whose request
    has irrelevant endogenous facts contributes, whether the hit crossed
    database versions or not; ``components_reused`` /
    ``components_dirty`` count memoizable component lookups (top-level
    and nested) served from the bundle caches versus recomputed during
    execution.
    """

    versions_seen: int = 0
    facts_zero_filled: int = 0
    components_reused: int = 0
    components_dirty: int = 0

    def merge(self, other: "DeltaStats") -> None:
        self.versions_seen += other.versions_seen
        self.facts_zero_filled += other.facts_zero_filled
        self.components_reused += other.components_reused
        self.components_dirty += other.components_dirty

    def snapshot(self) -> "DeltaStats":
        return DeltaStats(
            self.versions_seen,
            self.facts_zero_filled,
            self.components_reused,
            self.components_dirty,
        )

    def __repr__(self) -> str:
        return (
            f"DeltaStats(versions_seen={self.versions_seen},"
            f" facts_zero_filled={self.facts_zero_filled},"
            f" components_reused={self.components_reused},"
            f" components_dirty={self.components_dirty})"
        )


__all__ = [
    "DatabaseDelta",
    "DeltaStats",
    "apply_delta",
    "database_delta",
    "delta_from_dict",
    "delta_to_dict",
    "delta_touches_query",
    "dirty_components",
]

"""The method/accuracy policy: one request shape for every front end.

Historically callers steered the engine with a scattered
``allow_brute_force: bool`` kwarg — a two-state knob that could not say
"give me an estimate" and that every layer (engine, daemon, wire
envelope, client, CLI) spelled slightly differently.
:class:`MethodPolicy` replaces it with one value that travels the whole
stack unchanged:

* ``method`` — which algorithm family may serve the request:

  ========== =========================================================
  ``auto``    CntSat / ExoShap when the dichotomy allows, bounded brute
              force otherwise, and — new with the approximation tier —
              Hoeffding-bounded sampling for everything else.  Never
              raises :class:`~repro.core.errors.IntractableQueryError`.
  ``exact``   polynomial algorithms only (the old
              ``allow_brute_force=False``): raises at plan time when
              the query falls outside Theorems 3.1/4.3.
  ``brute-force``
              force coalition enumeration (still validated against
              ``MAX_BRUTE_FORCE_PLAYERS``).
  ``sampled`` force the additive FPRAS of Section 5, even for
              tractable queries.
  ========== =========================================================

* ``epsilon``/``delta`` — the additive accuracy contract of a sampled
  answer: with probability at least ``1 - delta`` every per-fact
  estimate is within ``epsilon`` of the exact Shapley value.  The pair
  is part of the request fingerprint (:meth:`MethodPolicy.contract`),
  so result stores and the daemon's request coalescer never conflate
  accuracy classes.

``allow_brute_force`` survives as a deprecation shim:
:func:`resolve_policy` maps ``True`` to ``auto`` and ``False`` to
``exact`` — bit-identical behavior for every previously *working* call
site — and warns once per process.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

#: The method names a policy may request.
METHODS = ("auto", "exact", "brute-force", "sampled")

#: Default additive accuracy contract for sampled answers.
DEFAULT_EPSILON = 0.1
DEFAULT_DELTA = 0.05


@dataclass(frozen=True)
class MethodPolicy:
    """How a request may be answered, and — if sampled — how accurately.

    Instances are immutable and hashable, so a policy can sit directly
    inside cache keys and coalescing keys.  ``epsilon``/``delta`` are
    validated in ``(0, 1)`` even for exact methods: a policy is one
    request shape, and front ends forward the accuracy fields blindly.
    """

    method: str = "auto"
    epsilon: float = DEFAULT_EPSILON
    delta: float = DEFAULT_DELTA

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(
                f"unknown method {self.method!r}"
                f" (expected one of: {', '.join(METHODS)})"
            )
        epsilon = float(self.epsilon)
        delta = float(self.delta)
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("epsilon and delta must lie in (0, 1)")
        object.__setattr__(self, "epsilon", epsilon)
        object.__setattr__(self, "delta", delta)

    def contract(self) -> tuple:
        """The accuracy-class fingerprint of this policy.

        Key material for sampled result entries: two requests share a
        stored estimate only when their ``(epsilon, delta)`` contracts
        agree exactly.  Exact methods have no accuracy class and do not
        include this in their keys.
        """
        return ("contract", repr(self.epsilon), repr(self.delta))

    def to_params(self) -> dict:
        """The policy as wire-envelope parameters (JSON-safe)."""
        return {
            "method": self.method,
            "epsilon": self.epsilon,
            "delta": self.delta,
        }

    @classmethod
    def from_params(cls, params: dict) -> "MethodPolicy":
        """Rebuild a policy from wire-envelope parameters.

        Accepts the legacy ``allow_brute_force`` field silently (the
        protocol boundary is not a deprecation surface — old clients
        must keep working without the server spewing warnings).
        Explicit policy fields win over the legacy flag.
        """
        if any(field in params for field in ("method", "epsilon", "delta")):
            return cls(
                str(params.get("method", "auto")),
                epsilon=float(params.get("epsilon", DEFAULT_EPSILON)),
                delta=float(params.get("delta", DEFAULT_DELTA)),
            )
        legacy = params.get("allow_brute_force")
        if legacy is None:
            return cls()
        return cls("auto" if legacy else "exact")


_WARNED = False


def _reset_deprecation_warnings() -> None:
    """Re-arm the once-per-process shim warning (test helper)."""
    global _WARNED
    _WARNED = False


def resolve_policy(
    policy: "MethodPolicy | str | None",
    allow_brute_force: bool | None = None,
    *,
    stacklevel: int = 3,
) -> MethodPolicy:
    """The deprecation shim: one policy out of old and new spellings.

    ``policy`` may be a :class:`MethodPolicy`, a bare method name
    (``"sampled"`` coerces to ``MethodPolicy("sampled")`` with default
    accuracy), or ``None`` (the ``auto`` default).  A non-``None``
    ``allow_brute_force`` maps ``True -> auto`` / ``False -> exact``
    and emits a :class:`DeprecationWarning` once per process; passing
    both spellings is an error — silently preferring either would make
    migration bugs invisible.
    """
    global _WARNED
    if allow_brute_force is not None:
        if policy is not None:
            raise ValueError(
                "pass either policy= or the deprecated allow_brute_force=,"
                " not both"
            )
        if not _WARNED:
            _WARNED = True
            warnings.warn(
                "allow_brute_force is deprecated; use"
                " policy=MethodPolicy('auto') instead of True and"
                " policy=MethodPolicy('exact') instead of False",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
        return MethodPolicy("auto" if allow_brute_force else "exact")
    if policy is None:
        return MethodPolicy()
    if isinstance(policy, str):
        return MethodPolicy(policy)
    return policy


__all__ = [
    "DEFAULT_DELTA",
    "DEFAULT_EPSILON",
    "METHODS",
    "MethodPolicy",
    "resolve_policy",
]

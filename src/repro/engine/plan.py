"""The planner: one request in, one explicit DAG of work units out.

:func:`build_plan` turns a ``(database, query, groundings)`` request into
a :class:`Plan` — the static half of the engine's plan/execute split.
Planning does everything that must happen *before* any count vector is
computed, and nothing that computes one:

1. **Method dispatch** (the dichotomy of Theorems 3.1/4.3): each
   grounding is classified as ``cntsat``, ``exoshap`` (the rewrite runs
   at plan time, once), ``brute-force`` (validated once, up front,
   against ``MAX_BRUTE_FORCE_PLAYERS``), ``empty``, or ``inconsistent``.
   Intractable requests therefore fail at plan time, before a single
   worker is spawned.
2. **Node construction**: one :class:`GroundingTask` per distinct
   request (the per-grounding convolution/assembly task) plus one
   :class:`BundleTask` per distinct top-level Gaifman component
   (the per-component count-vector task).  Node ids are canonical
   fingerprints (:mod:`repro.engine.fingerprint`), so groundings that
   share a component share the *same* bundle node — the DAG encodes the
   cross-grounding sharing that :class:`repro.engine.cache.BundlePool`
   realizes at execution time.
3. **Store pruning, across versions**: plan nodes whose request key is
   already satisfied by the engine's
   :class:`repro.engine.stores.ResultStore` are pruned from the
   executable plan and recorded in :attr:`Plan.satisfied`; executors
   never see them.  Keys are *relevance-scoped*
   (:func:`repro.engine.fingerprint.fingerprint_request`), so a request
   whose relevant slice a database delta did not touch is pruned even
   against a different database version — the stored core result is
   inflated back to this version's endogenous fact set
   (:func:`repro.engine.results.inflate_result`).
4. **Bundle-reuse accounting**: when a ``bundle_cache`` is supplied,
   bundle nodes whose component fingerprint is already warm are counted
   as reused (``PlanStats.bundles_reused``) — the executor will satisfy
   them from the cache instead of recomputing, which is how a delta's
   *clean* components are skipped.

Executors (:mod:`repro.engine.executors`) consume the plan; they are
free to run independent nodes in any order — or in different processes —
because the planner has already made every dependency explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, AbstractSet, Sequence

from repro.core.database import Database
from repro.core.errors import IntractableQueryError
from repro.core.facts import Constant
from repro.core.gaifman import infer_exogenous_relations
from repro.core.hierarchy import is_hierarchical
from repro.core.paths import has_non_hierarchical_path
from repro.core.query import BooleanQuery, ConjunctiveQuery
from repro.engine.bundles import top_level_components
from repro.engine.fingerprint import fingerprint_request, relevant_facts
from repro.engine.results import BatchResult, inflate_result
from repro.shapley.brute_force import MAX_BRUTE_FORCE_PLAYERS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.executors import BundleCache
    from repro.engine.stores import ResultStore

#: Node-id tag for per-component bundle tasks.
BUNDLE = "bundle"
#: Node-id tag for per-grounding convolution/assembly tasks.
RESULT = "result"


@dataclass(frozen=True)
class PlanRequest:
    """One grounding of a batch request, before planning.

    ``query`` is the (grounded) Boolean query; ``grounding`` carries the
    answer tuple when the query was obtained by grounding a non-Boolean
    head, and ``inconsistent`` marks tuples that conflict with a repeated
    head variable (``query`` is then ``None`` — the result is identically
    zero and never touches the stores).
    """

    query: BooleanQuery | None
    grounding: tuple[Constant, ...] | None = None
    inconsistent: bool = False


@dataclass(frozen=True)
class BundleTask:
    """A per-component count-vector node: compute one CountBundle."""

    node_id: tuple
    fingerprint: tuple
    scope: tuple


@dataclass(frozen=True)
class GroundingTask:
    """A per-grounding node: count vectors + Lemma 3.2 assembly.

    ``database``/``query`` are the pair the method actually runs on —
    for ``exoshap`` they are the *rewritten* database and query produced
    at plan time.  ``dependencies`` lists the bundle node ids this task's
    recursion will consume; executors may satisfy them in any order (or
    lazily, through the bundle cache) before or while running the task.
    """

    node_id: tuple
    key: tuple | None
    method: str
    database: Database | None
    query: BooleanQuery | None
    dependencies: tuple[tuple, ...] = ()
    #: The request's relevant endogenous facts — the projection the
    #: engine stores under the (relevance-scoped) key after execution.
    relevant: frozenset = frozenset()


@dataclass(frozen=True)
class PlannedRequest:
    """A request after planning: where its result will come from.

    ``node_id`` names the grounding task that produces the result, or is
    ``None`` when the store already held it (then ``Plan.satisfied[key]``
    has the value).
    """

    request: PlanRequest
    key: tuple | None
    node_id: tuple | None


@dataclass
class PlanStats:
    """Planner accounting: how much work the plan avoided up front."""

    requested: int = 0
    planned: int = 0
    pruned: int = 0
    bundles: int = 0
    bundles_reused: int = 0

    def merge(self, other: "PlanStats") -> None:
        self.requested += other.requested
        self.planned += other.planned
        self.pruned += other.pruned
        self.bundles += other.bundles
        self.bundles_reused += other.bundles_reused

    def snapshot(self) -> "PlanStats":
        return PlanStats(
            self.requested,
            self.planned,
            self.pruned,
            self.bundles,
            self.bundles_reused,
        )

    def __repr__(self) -> str:
        return (
            f"PlanStats(requested={self.requested}, planned={self.planned},"
            f" pruned={self.pruned}, bundles={self.bundles},"
            f" bundles_reused={self.bundles_reused})"
        )


@dataclass
class Plan:
    """An executable DAG: grounding tasks over shared bundle nodes.

    ``tasks`` lists the grounding tasks in request order (node ids are
    unique — duplicate requests collapse onto one node); ``bundles`` maps
    bundle node ids to their tasks, deduplicated across groundings;
    ``satisfied`` holds the store-pruned results keyed by request
    fingerprint; ``requests`` records, per input request, where its
    result will come from.
    """

    requests: list[PlannedRequest] = field(default_factory=list)
    tasks: list[GroundingTask] = field(default_factory=list)
    bundles: dict[tuple, BundleTask] = field(default_factory=dict)
    satisfied: dict[tuple, BatchResult] = field(default_factory=dict)
    stats: PlanStats = field(default_factory=PlanStats)
    #: Endogenous null players zero-filled while inflating store hits.
    #: Any relevance-scoped hit whose request has irrelevant endogenous
    #: facts counts here — same-version or cross-version alike (the
    #: engine folds this into its delta stats).
    zero_filled: int = 0


def _dispatch(
    database: Database,
    query: BooleanQuery,
    exogenous_relations: AbstractSet[str] | None,
    allow_brute_force: bool,
) -> tuple[str, Database, BooleanQuery]:
    """The dichotomy dispatch, with up-front validation.

    Returns ``(method, database, query)`` where the database/query pair
    is the one the method runs on (rewritten for ``exoshap``).  Raises
    :class:`IntractableQueryError` — at plan time — when no polynomial
    algorithm applies and brute force is disallowed or oversized.
    """
    players = len(database.endogenous)
    if players == 0:
        return "empty", database, query
    if isinstance(query, ConjunctiveQuery):
        boolean = query.as_boolean()
        if exogenous_relations is None:
            exogenous_relations = infer_exogenous_relations(boolean, database)
        if boolean.is_self_join_free:
            if is_hierarchical(boolean):
                return "cntsat", database, boolean
            if not has_non_hierarchical_path(boolean, exogenous_relations):
                from repro.shapley.exoshap import rewrite_to_hierarchical

                rewrite = rewrite_to_hierarchical(
                    database, boolean, exogenous_relations
                )
                return "exoshap", rewrite.database, rewrite.query
    if not allow_brute_force:
        raise IntractableQueryError(
            f"no polynomial batch algorithm applies to {query!r} and brute"
            f" force over {players} endogenous facts is disabled"
        )
    if players > MAX_BRUTE_FORCE_PLAYERS:
        raise IntractableQueryError(
            f"no polynomial batch algorithm applies to {query!r} and brute"
            f" force over {players} endogenous facts would enumerate"
            f" 2^{players} coalitions (limit: {MAX_BRUTE_FORCE_PLAYERS})"
        )
    return "brute-force", database, query


def build_plan(
    database: Database,
    requests: Sequence[PlanRequest],
    *,
    exogenous_relations: AbstractSet[str] | None = None,
    allow_brute_force: bool = True,
    store: "ResultStore | None" = None,
    include_bundles: bool = True,
    bundle_cache: "BundleCache | None" = None,
) -> Plan:
    """Plan a batch request: dispatch, node construction, store pruning.

    All validation errors (intractable queries, disabled brute force —
    including store-served results whose *cached* method was brute force)
    surface here, before any execution; a returned plan only contains
    work the dichotomy sanctioned.

    Request keys are relevance-scoped, so store pruning works **across
    database versions**: a delta that leaves a request's relevant slice
    untouched leaves its key (and hence its store entry) intact, and the
    stored core result is inflated back to this version's endogenous
    fact set here, at plan time.

    ``include_bundles=False`` skips materializing the per-component
    bundle nodes.  Only a sharding executor consumes them (the serial
    recursion re-derives the same components and keys internally), so
    the engine disables them for single-process backends rather than pay
    the top-level restriction/fingerprint pass twice per grounding.
    ``bundle_cache`` (when given alongside bundle nodes) is only
    consulted — never mutated — to count how many bundle nodes are
    already warm (``stats.bundles_reused``): the delta-scoped pruning
    signal for clean components.
    """
    plan = Plan()
    plan.stats.requested = len(requests)
    seen: set[tuple] = set()
    for request in requests:
        if request.inconsistent:
            node_id = (RESULT, "inconsistent")
            if node_id not in seen:
                seen.add(node_id)
                plan.tasks.append(
                    GroundingTask(node_id, None, "inconsistent", database, None)
                )
                plan.stats.planned += 1
            plan.requests.append(PlannedRequest(request, None, node_id))
            continue
        relevant = relevant_facts(database, request.query)
        key = fingerprint_request(
            database,
            request.query,
            exogenous_relations,
            request.grounding,
            relevant=relevant,
        )
        if key in plan.satisfied:
            plan.requests.append(PlannedRequest(request, key, None))
            continue
        node_id = (RESULT, key)
        if node_id in seen:
            plan.requests.append(PlannedRequest(request, key, node_id))
            continue
        cached = store.get(key) if store is not None else None
        if cached is not None:
            if not allow_brute_force and cached.method == "brute-force":
                # A warm store must not bypass the caller's polynomial-only
                # contract: honor the flag exactly as a cold plan would.
                raise IntractableQueryError(
                    f"no polynomial batch algorithm applies to {request.query!r}"
                    f" and brute force over {cached.player_count} endogenous"
                    " facts is disabled"
                )
            inflated, filled = inflate_result(cached, database.endogenous)
            plan.zero_filled += filled
            plan.satisfied[key] = inflated
            plan.stats.pruned += 1
            plan.requests.append(PlannedRequest(request, key, None))
            continue
        method, count_database, count_query = _dispatch(
            database, request.query, exogenous_relations, allow_brute_force
        )
        dependencies = []
        if include_bundles and method in ("cntsat", "exoshap"):
            for fingerprint, scope in top_level_components(count_database, count_query):
                bundle_id = (BUNDLE, fingerprint)
                if bundle_id not in plan.bundles:
                    plan.bundles[bundle_id] = BundleTask(bundle_id, fingerprint, scope)
                    if (
                        bundle_cache is not None
                        and bundle_cache.peek(fingerprint) is not None
                    ):
                        plan.stats.bundles_reused += 1
                dependencies.append(bundle_id)
        seen.add(node_id)
        plan.tasks.append(
            GroundingTask(
                node_id,
                key,
                method,
                count_database,
                count_query,
                tuple(dependencies),
                relevant=relevant[0],
            )
        )
        plan.stats.planned += 1
        plan.requests.append(PlannedRequest(request, key, node_id))
    plan.stats.bundles = len(plan.bundles)
    return plan


__all__ = [
    "BUNDLE",
    "RESULT",
    "BundleTask",
    "GroundingTask",
    "Plan",
    "PlanRequest",
    "PlanStats",
    "PlannedRequest",
    "build_plan",
]

"""The planner: one request in, one explicit DAG of work units out.

:func:`build_plan` turns a ``(database, query, groundings)`` request into
a :class:`Plan` — the static half of the engine's plan/execute split.
Planning does everything that must happen *before* any count vector is
computed, and nothing that computes one:

1. **Method dispatch** (the dichotomy of Theorems 3.1/4.3, steered by a
   :class:`repro.engine.policy.MethodPolicy`): each grounding is
   classified as ``cntsat``, ``exoshap`` (the rewrite runs at plan
   time, once), ``brute-force`` (validated once, up front, against
   ``MAX_BRUTE_FORCE_PLAYERS``), ``sampled`` (the Section 5 additive
   FPRAS — the ``auto`` fallback for the intractable class, or forced),
   ``empty``, or ``inconsistent``.  Under an ``exact`` policy,
   intractable requests fail at plan time, before a single worker is
   spawned; under ``auto`` nothing is intractable anymore.
2. **Node construction**: one :class:`GroundingTask` per distinct
   request (the per-grounding convolution/assembly task) plus one
   :class:`BundleTask` per distinct top-level Gaifman component
   (the per-component count-vector task).  Node ids are canonical
   fingerprints (:mod:`repro.engine.fingerprint`), so groundings that
   share a component share the *same* bundle node — the DAG encodes the
   cross-grounding sharing that :class:`repro.engine.cache.BundlePool`
   realizes at execution time.
3. **Store pruning, across versions**: plan nodes whose request key is
   already satisfied by the engine's
   :class:`repro.engine.stores.ResultStore` are pruned from the
   executable plan and recorded in :attr:`Plan.satisfied`; executors
   never see them.  Keys are *relevance-scoped*
   (:func:`repro.engine.fingerprint.fingerprint_request`), so a request
   whose relevant slice a database delta did not touch is pruned even
   against a different database version — the stored core result is
   inflated back to this version's endogenous fact set
   (:func:`repro.engine.results.inflate_result`).
4. **Bundle-reuse accounting**: when a ``bundle_cache`` is supplied,
   bundle nodes whose component fingerprint is already warm are counted
   as reused (``PlanStats.bundles_reused``) — the executor will satisfy
   them from the cache instead of recomputing, which is how a delta's
   *clean* components are skipped.

Executors (:mod:`repro.engine.executors`) consume the plan; they are
free to run independent nodes in any order — or in different processes —
because the planner has already made every dependency explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, AbstractSet, Sequence

from repro.core.database import Database
from repro.core.errors import IntractableQueryError
from repro.core.facts import Constant
from repro.core.gaifman import infer_exogenous_relations
from repro.core.hierarchy import is_hierarchical
from repro.core.paths import has_non_hierarchical_path
from repro.core.query import BooleanQuery, ConjunctiveQuery
from repro.engine.bundles import top_level_components
from repro.engine.fingerprint import (
    fingerprint_request,
    fingerprint_sample_state,
    fingerprint_sampled,
    relevant_facts,
)
from repro.engine.policy import MethodPolicy
from repro.engine.results import BatchResult, inflate_result, result_from_state
from repro.obs import tracing as _tracing
from repro.shapley.brute_force import MAX_BRUTE_FORCE_PLAYERS
from repro.shapley.sampling import SampleState, rounds_for_contract, sample_seed
from repro.util import kernels

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.executors import BundleCache
    from repro.engine.stores import ResultStore

#: Node-id tag for per-component bundle tasks.
BUNDLE = "bundle"
#: Node-id tag for per-grounding convolution/assembly tasks.
RESULT = "result"


@dataclass(frozen=True)
class PlanRequest:
    """One grounding of a batch request, before planning.

    ``query`` is the (grounded) Boolean query; ``grounding`` carries the
    answer tuple when the query was obtained by grounding a non-Boolean
    head, and ``inconsistent`` marks tuples that conflict with a repeated
    head variable (``query`` is then ``None`` — the result is identically
    zero and never touches the stores).
    """

    query: BooleanQuery | None
    grounding: tuple[Constant, ...] | None = None
    inconsistent: bool = False


@dataclass(frozen=True)
class BundleTask:
    """A per-component count-vector node: compute one CountBundle."""

    node_id: tuple
    fingerprint: tuple
    scope: tuple


@dataclass(frozen=True)
class SampleSpec:
    """How a ``sampled`` grounding task must drive the permutation stream.

    ``rounds`` is the *total* round count the task's accuracy contract
    requires; the executor runs only the fresh suffix ``prior.rounds ..
    rounds - 1`` of stream ``seed`` and folds it into ``prior`` (the
    stored :class:`repro.shapley.sampling.SampleState` the planner
    loaded, or ``None`` on a cold start).  ``state_key`` is where the
    engine persists the extended state; ``state_digest`` is the public
    handle surfaced on the result's estimate.  ``restarted`` records
    that a stored state existed but was unusable (wrong stream,
    stratum count, or player set) and the stream was restarted from
    round zero.  ``strata`` is the per-round stratification of
    :func:`repro.shapley.sampling.round_sweeps` — ``1`` is the plain
    antithetic pair.
    """

    seed: int
    rounds: int
    epsilon: float
    delta: float
    state_key: tuple
    state_digest: str
    prior: SampleState | None = None
    restarted: bool = False
    strata: int = 1

    @property
    def fresh_rounds(self) -> int:
        return self.rounds - (self.prior.rounds if self.prior else 0)


@dataclass(frozen=True)
class GroundingTask:
    """A per-grounding node: count vectors + Lemma 3.2 assembly.

    ``database``/``query`` are the pair the method actually runs on —
    for ``exoshap`` they are the *rewritten* database and query produced
    at plan time; for ``sampled`` the database is the request's
    *relevant slice* (see :func:`sampled databases <build_plan>` below),
    and ``sample_spec`` carries the round plan.  ``dependencies`` lists
    the bundle node ids this task's recursion will consume; executors
    may satisfy them in any order (or lazily, through the bundle cache)
    before or while running the task.
    """

    node_id: tuple
    key: tuple | None
    method: str
    database: Database | None
    query: BooleanQuery | None
    dependencies: tuple[tuple, ...] = ()
    #: The request's relevant endogenous facts — the projection the
    #: engine stores under the (relevance-scoped) key after execution.
    relevant: frozenset = frozenset()
    sample_spec: SampleSpec | None = None


@dataclass(frozen=True)
class PlannedRequest:
    """A request after planning: where its result will come from.

    ``node_id`` names the grounding task that produces the result, or is
    ``None`` when the store already held it (then ``Plan.satisfied[key]``
    has the value).
    """

    request: PlanRequest
    key: tuple | None
    node_id: tuple | None


@dataclass
class PlanStats:
    """Planner accounting: how much work the plan avoided up front."""

    requested: int = 0
    planned: int = 0
    pruned: int = 0
    bundles: int = 0
    bundles_reused: int = 0

    def merge(self, other: "PlanStats") -> None:
        self.requested += other.requested
        self.planned += other.planned
        self.pruned += other.pruned
        self.bundles += other.bundles
        self.bundles_reused += other.bundles_reused

    def snapshot(self) -> "PlanStats":
        return PlanStats(
            self.requested,
            self.planned,
            self.pruned,
            self.bundles,
            self.bundles_reused,
        )

    def __repr__(self) -> str:
        return (
            f"PlanStats(requested={self.requested}, planned={self.planned},"
            f" pruned={self.pruned}, bundles={self.bundles},"
            f" bundles_reused={self.bundles_reused})"
        )


@dataclass
class SampleStats:
    """Sampler accounting: how the approximation tier spent (and saved) work.

    ``requests`` counts sampled requests planned; ``resumed_rounds``
    the stored antithetic rounds they reused instead of recomputing;
    ``served_from_state`` the requests whose contract was already
    satisfied by stored rounds (zero fresh work); ``restarts`` the
    requests that found an unusable stored state and started the stream
    over.  ``fresh_rounds`` and ``evaluations`` are filled in by the
    engine after execution: new rounds actually run and query
    evaluations actually spent.
    """

    requests: int = 0
    fresh_rounds: int = 0
    resumed_rounds: int = 0
    served_from_state: int = 0
    restarts: int = 0
    evaluations: int = 0

    def merge(self, other: "SampleStats") -> None:
        self.requests += other.requests
        self.fresh_rounds += other.fresh_rounds
        self.resumed_rounds += other.resumed_rounds
        self.served_from_state += other.served_from_state
        self.restarts += other.restarts
        self.evaluations += other.evaluations

    def snapshot(self) -> "SampleStats":
        return SampleStats(
            self.requests,
            self.fresh_rounds,
            self.resumed_rounds,
            self.served_from_state,
            self.restarts,
            self.evaluations,
        )

    def __repr__(self) -> str:
        return (
            f"SampleStats(requests={self.requests},"
            f" fresh_rounds={self.fresh_rounds},"
            f" resumed_rounds={self.resumed_rounds},"
            f" served_from_state={self.served_from_state},"
            f" restarts={self.restarts}, evaluations={self.evaluations})"
        )


@dataclass
class Plan:
    """An executable DAG: grounding tasks over shared bundle nodes.

    ``tasks`` lists the grounding tasks in request order (node ids are
    unique — duplicate requests collapse onto one node); ``bundles`` maps
    bundle node ids to their tasks, deduplicated across groundings;
    ``satisfied`` holds the store-pruned results keyed by request
    fingerprint; ``requests`` records, per input request, where its
    result will come from.
    """

    requests: list[PlannedRequest] = field(default_factory=list)
    tasks: list[GroundingTask] = field(default_factory=list)
    bundles: dict[tuple, BundleTask] = field(default_factory=dict)
    satisfied: dict[tuple, BatchResult] = field(default_factory=dict)
    stats: PlanStats = field(default_factory=PlanStats)
    sample: SampleStats = field(default_factory=SampleStats)
    #: Endogenous null players zero-filled while inflating store hits.
    #: Any relevance-scoped hit whose request has irrelevant endogenous
    #: facts counts here — same-version or cross-version alike (the
    #: engine folds this into its delta stats).
    zero_filled: int = 0
    #: The convolution kernel active when this plan was built — the
    #: ``REPRO_KERNEL`` selection (``auto`` / ``schoolbook`` / ``packed``
    #: / ``gmpy``), re-read from the environment at plan time.
    kernel: str = "auto"
    #: Per-request kernel accounting: the engine attaches the
    #: :class:`repro.util.kernels.KernelStats` delta observed between
    #: plan construction start and execution end, so one request's
    #: convolution work is separable from the process-wide totals.
    kernel_stats: "kernels.KernelStats | None" = None


def _as_boolean(query: BooleanQuery) -> BooleanQuery:
    """Normalize a CQ to its Boolean form (UCQs are Boolean already)."""
    return query.as_boolean() if isinstance(query, ConjunctiveQuery) else query


def _dispatch(
    database: Database,
    query: BooleanQuery,
    exogenous_relations: AbstractSet[str] | None,
    policy: MethodPolicy,
) -> tuple[str, Database, BooleanQuery]:
    """The policy-steered dichotomy dispatch, with up-front validation.

    Returns ``(method, database, query)`` where the database/query pair
    is the one the method runs on (rewritten for ``exoshap``).  Raises
    :class:`IntractableQueryError` — at plan time — when the policy is
    ``exact`` and no polynomial algorithm applies, or when a forced
    ``brute-force`` request is oversized.  Under ``auto`` the dispatch
    never raises: the intractable class falls through to ``sampled``.
    """
    players = len(database.endogenous)
    if players == 0:
        return "empty", database, query
    if policy.method == "brute-force":
        if players > MAX_BRUTE_FORCE_PLAYERS:
            raise IntractableQueryError(
                f"brute force over {players} endogenous facts would enumerate"
                f" 2^{players} coalitions (limit: {MAX_BRUTE_FORCE_PLAYERS})"
            )
        return "brute-force", database, query
    if policy.method == "sampled":
        return "sampled", database, _as_boolean(query)
    if isinstance(query, ConjunctiveQuery):
        boolean = query.as_boolean()
        if exogenous_relations is None:
            exogenous_relations = infer_exogenous_relations(boolean, database)
        if boolean.is_self_join_free:
            if is_hierarchical(boolean):
                return "cntsat", database, boolean
            if not has_non_hierarchical_path(boolean, exogenous_relations):
                from repro.shapley.exoshap import rewrite_to_hierarchical

                rewrite = rewrite_to_hierarchical(
                    database, boolean, exogenous_relations
                )
                return "exoshap", rewrite.database, rewrite.query
    if policy.method == "exact":
        raise IntractableQueryError(
            f"no polynomial batch algorithm applies to {query!r} and brute"
            f" force over {players} endogenous facts is disabled"
        )
    if players > MAX_BRUTE_FORCE_PLAYERS:
        return "sampled", database, _as_boolean(query)
    return "brute-force", database, query


def _plan_sampled(
    plan: Plan,
    request: PlanRequest,
    database: Database,
    query: BooleanQuery,
    base_key: tuple,
    relevant: tuple[frozenset, frozenset],
    policy: MethodPolicy,
    store: "ResultStore | None",
    seen: set[tuple],
    strata: int = 1,
) -> None:
    """Plan one sampled grounding: accuracy-tagged key, resumable state.

    The result key wraps the base request key with the policy's
    ``(epsilon, delta)`` contract — stores never mix accuracy classes —
    while the sampler *state* lives under a policy-independent key, so
    any contract over the same request extends one permutation stream.
    Three outcomes, checked in order:

    1. the contract's own result entry is warm — inflate and prune;
    2. a stored state already holds enough rounds — build the (tighter)
       result from it at plan time, zero fresh work;
    3. otherwise emit a task whose spec resumes the stored state (or
       starts the stream) and runs only the missing rounds, over the
       request's *relevant slice* as its database: dummy invariance
       makes the restricted estimates exact-equivalent, and keeps them
       — like every relevance-scoped entry — valid across database
       versions whose deltas leave the slice untouched.
    """
    from repro.engine.persistent import digest_key

    contract = policy.contract()
    if strata != 1:
        # A stratified estimate is a different number from the plain one
        # (same guarantee, different sweep set), so neither results nor
        # states may be shared across stratum counts.
        contract = (*contract, ("strata", strata))
    skey = fingerprint_sampled(base_key, contract)
    if skey in plan.satisfied:
        plan.requests.append(PlannedRequest(request, skey, None))
        return
    node_id = (RESULT, skey)
    if node_id in seen:
        plan.requests.append(PlannedRequest(request, skey, node_id))
        return
    if store is not None:
        with _tracing.maybe_span(
            _tracing.ACTIVE, "prune", key=_tracing.label(skey), sampled=True
        ) as prune_span:
            cached = store.get(skey)
            prune_span.set("hit", cached is not None)
    else:
        cached = None
    if cached is not None:
        inflated, filled = inflate_result(cached, database.endogenous)
        plan.zero_filled += filled
        plan.satisfied[skey] = inflated
        plan.stats.pruned += 1
        plan.requests.append(PlannedRequest(request, skey, None))
        return
    state_key = fingerprint_sample_state(base_key)
    if strata != 1:
        state_key = (*state_key, ("strata", strata))
    state_digest = digest_key(state_key)[:16]
    seed = sample_seed(base_key)
    players = sorted(relevant[0], key=repr)
    prior = store.get(state_key) if store is not None else None
    restarted = False
    if prior is not None and not (
        isinstance(prior, SampleState)
        and prior.compatible_with(seed, players, strata)
    ):
        prior, restarted = None, True
    needed = rounds_for_contract(policy.epsilon, policy.delta)
    plan.sample.requests += 1
    plan.sample.resumed_rounds += prior.rounds if prior is not None else 0
    if restarted:
        plan.sample.restarts += 1
    if prior is not None and prior.rounds >= needed:
        core = result_from_state(prior, policy.delta, state_digest=state_digest)
        inflated, filled = inflate_result(core, database.endogenous)
        plan.zero_filled += filled
        plan.satisfied[skey] = inflated
        plan.stats.pruned += 1
        plan.sample.served_from_state += 1
        plan.requests.append(PlannedRequest(request, skey, None))
        return
    restricted = Database(endogenous=relevant[0], exogenous=relevant[1])
    spec = SampleSpec(
        seed=seed,
        rounds=needed,
        epsilon=policy.epsilon,
        delta=policy.delta,
        state_key=state_key,
        state_digest=state_digest,
        prior=prior,
        restarted=restarted,
        strata=strata,
    )
    seen.add(node_id)
    plan.tasks.append(
        GroundingTask(
            node_id,
            skey,
            "sampled",
            restricted,
            query,
            relevant=relevant[0],
            sample_spec=spec,
        )
    )
    plan.stats.planned += 1
    plan.requests.append(PlannedRequest(request, skey, node_id))


def build_plan(
    database: Database,
    requests: Sequence[PlanRequest],
    *,
    exogenous_relations: AbstractSet[str] | None = None,
    policy: MethodPolicy | None = None,
    store: "ResultStore | None" = None,
    include_bundles: bool = True,
    bundle_cache: "BundleCache | None" = None,
    sample_strata: int = 1,
) -> Plan:
    """Plan a batch request: dispatch, node construction, store pruning.

    All validation errors (intractable queries under an ``exact``
    policy — including store-served results whose *cached* method was
    brute force — and oversized forced brute force) surface here, before
    any execution; a returned plan only contains work the policy
    sanctioned.

    Request keys are relevance-scoped, so store pruning works **across
    database versions**: a delta that leaves a request's relevant slice
    untouched leaves its key (and hence its store entry) intact, and the
    stored core result is inflated back to this version's endogenous
    fact set here, at plan time.

    ``include_bundles=False`` skips materializing the per-component
    bundle nodes.  Only a sharding executor consumes them (the serial
    recursion re-derives the same components and keys internally), so
    the engine disables them for single-process backends rather than pay
    the top-level restriction/fingerprint pass twice per grounding.
    ``bundle_cache`` (when given alongside bundle nodes) is only
    consulted — never mutated — to count how many bundle nodes are
    already warm (``stats.bundles_reused``): the delta-scoped pruning
    signal for clean components.

    ``sample_strata`` selects the per-round stratification of sampled
    tasks (:func:`repro.shapley.sampling.round_sweeps`); ``1`` — the
    default — is the plain antithetic sampler, bit for bit.
    """
    if policy is None:
        policy = MethodPolicy()
    tracer = _tracing.ACTIVE
    if tracer is None:
        return _build_plan(
            database,
            requests,
            exogenous_relations,
            policy,
            store,
            include_bundles,
            bundle_cache,
            sample_strata,
        )
    with tracer.span("plan", requests=len(requests)) as span:
        plan = _build_plan(
            database,
            requests,
            exogenous_relations,
            policy,
            store,
            include_bundles,
            bundle_cache,
            sample_strata,
        )
        span.set("planned", plan.stats.planned)
        span.set("pruned", plan.stats.pruned)
        span.set("bundles", plan.stats.bundles)
        span.set("kernel", plan.kernel)
        return plan


def _build_plan(
    database: Database,
    requests: Sequence[PlanRequest],
    exogenous_relations: AbstractSet[str] | None,
    policy: MethodPolicy,
    store: "ResultStore | None",
    include_bundles: bool,
    bundle_cache: "BundleCache | None",
    sample_strata: int,
) -> Plan:
    plan = Plan()
    # Kernel selection is a *plan-time* decision: the environment is read
    # once per plan, so one batch never mixes tiers mid-flight, and the
    # chosen tier is recorded on the plan (and in the kernel counters).
    plan.kernel = kernels.refresh_from_environment()
    plan.stats.requested = len(requests)
    seen: set[tuple] = set()
    for request in requests:
        if request.inconsistent:
            node_id = (RESULT, "inconsistent")
            if node_id not in seen:
                seen.add(node_id)
                plan.tasks.append(
                    GroundingTask(node_id, None, "inconsistent", database, None)
                )
                plan.stats.planned += 1
            plan.requests.append(PlannedRequest(request, None, node_id))
            continue
        relevant = relevant_facts(database, request.query)
        key = fingerprint_request(
            database,
            request.query,
            exogenous_relations,
            request.grounding,
            relevant=relevant,
        )
        if policy.method == "sampled" and database.endogenous:
            _plan_sampled(
                plan,
                request,
                database,
                _as_boolean(request.query),
                key,
                relevant,
                policy,
                store,
                seen,
                strata=sample_strata,
            )
            continue
        if key in plan.satisfied:
            plan.requests.append(PlannedRequest(request, key, None))
            continue
        node_id = (RESULT, key)
        if node_id in seen:
            plan.requests.append(PlannedRequest(request, key, node_id))
            continue
        if store is not None:
            with _tracing.maybe_span(
                _tracing.ACTIVE, "prune", key=_tracing.label(key)
            ) as prune_span:
                cached = store.get(key)
                prune_span.set("hit", cached is not None)
        else:
            cached = None
        if cached is not None:
            if policy.method == "exact" and cached.method == "brute-force":
                # A warm store must not bypass the caller's polynomial-only
                # contract: honor the policy exactly as a cold plan would.
                raise IntractableQueryError(
                    f"no polynomial batch algorithm applies to {request.query!r}"
                    f" and brute force over {cached.player_count} endogenous"
                    " facts is disabled"
                )
            inflated, filled = inflate_result(cached, database.endogenous)
            plan.zero_filled += filled
            plan.satisfied[key] = inflated
            plan.stats.pruned += 1
            plan.requests.append(PlannedRequest(request, key, None))
            continue
        method, count_database, count_query = _dispatch(
            database, request.query, exogenous_relations, policy
        )
        if method == "sampled":
            # An ``auto`` fallback: the request is re-planned on the
            # sampled path, under its accuracy-tagged key.
            _plan_sampled(
                plan,
                request,
                database,
                count_query,
                key,
                relevant,
                policy,
                store,
                seen,
                strata=sample_strata,
            )
            continue
        dependencies = []
        if method in ("cntsat", "exoshap"):
            kernels.note_plan_selection(len(count_database.endogenous))
        if include_bundles and method in ("cntsat", "exoshap"):
            for fingerprint, scope in top_level_components(count_database, count_query):
                bundle_id = (BUNDLE, fingerprint)
                if bundle_id not in plan.bundles:
                    plan.bundles[bundle_id] = BundleTask(bundle_id, fingerprint, scope)
                    if (
                        bundle_cache is not None
                        and bundle_cache.peek(fingerprint) is not None
                    ):
                        plan.stats.bundles_reused += 1
                dependencies.append(bundle_id)
        seen.add(node_id)
        plan.tasks.append(
            GroundingTask(
                node_id,
                key,
                method,
                count_database,
                count_query,
                tuple(dependencies),
                relevant=relevant[0],
            )
        )
        plan.stats.planned += 1
        plan.requests.append(PlannedRequest(request, key, node_id))
    plan.stats.bundles = len(plan.bundles)
    return plan


__all__ = [
    "BUNDLE",
    "RESULT",
    "BundleTask",
    "GroundingTask",
    "Plan",
    "PlanRequest",
    "PlanStats",
    "PlannedRequest",
    "SampleSpec",
    "SampleStats",
    "build_plan",
]

"""Exporters for finished trace documents.

Both exporters operate on the plain-dict *document* form produced by
:meth:`repro.obs.tracing.Tracer.document` (and carried verbatim on the
daemon wire), so a trace exported from a ``--connect`` client renders
identically to one taken in-process.

* :func:`export_chrome` writes Chrome ``trace_event`` JSON — open it in
  ``chrome://tracing`` or https://ui.perfetto.dev.  Lanes map to thread
  rows so overlapping shard dispatches nest cleanly.
* :func:`render_trace` returns a compact text tree for terminals.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

from repro.obs.tracing import Tracer

__all__ = [
    "export_chrome",
    "render_trace",
    "top_spans",
    "trace_from_dict",
    "trace_to_dict",
]


def trace_to_dict(trace: Tracer | Mapping[str, Any]) -> dict[str, Any]:
    """Accept a live tracer or an already-built document; return the dict."""
    if isinstance(trace, Tracer):
        return trace.document()
    return trace_from_dict(trace)


def trace_from_dict(document: Mapping[str, Any]) -> dict[str, Any]:
    """Validate a wire-shipped trace document and return a normal form.

    Raises :class:`ValueError` on structural problems (missing fields,
    spans referencing unknown parents) so transport bugs surface at the
    boundary instead of as corrupt renders.
    """
    if not isinstance(document, Mapping):
        raise ValueError("trace document must be a mapping")
    spans = document.get("spans")
    if not isinstance(spans, list):
        raise ValueError("trace document missing 'spans' list")
    seen: set[int] = set()
    normal_spans: list[dict[str, Any]] = []
    for span in spans:
        if not isinstance(span, Mapping):
            raise ValueError("trace span must be a mapping")
        try:
            span_id = int(span["id"])
            name = str(span["name"])
            start_us = int(span["start_us"])
            dur_us = int(span["dur_us"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed trace span: {span!r}") from exc
        parent = span.get("parent")
        normal_spans.append(
            {
                "id": span_id,
                "parent": None if parent is None else int(parent),
                "name": name,
                "start_us": start_us,
                "dur_us": max(0, dur_us),
                "lane": int(span.get("lane", 0)),
                "attrs": dict(span.get("attrs") or {}),
            }
        )
        seen.add(span_id)
    for span in normal_spans:
        if span["parent"] is not None and span["parent"] not in seen:
            raise ValueError(
                f"span {span['id']} references unknown parent {span['parent']}"
            )
    normal_spans.sort(key=lambda span: (span["start_us"], span["id"]))
    return {
        "trace_id": document.get("trace_id"),
        "pid": int(document.get("pid", 0)),
        "dropped": int(document.get("dropped", 0)),
        "spans": normal_spans,
    }


def export_chrome(trace: Tracer | Mapping[str, Any], path: str | os.PathLike) -> str:
    """Write the trace as Chrome ``trace_event`` JSON; return the path."""
    document = trace_to_dict(trace)
    pid = document["pid"] or 1
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"repro trace {document['trace_id']}"},
        }
    ]
    lanes = sorted({span["lane"] for span in document["spans"]} | {0})
    for lane in lanes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": lane,
                "args": {"name": "main" if lane == 0 else f"shard lane {lane}"},
            }
        )
    for span in document["spans"]:
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "cat": "repro",
                "ts": span["start_us"],
                "dur": max(1, span["dur_us"]),
                "pid": pid,
                "tid": span["lane"],
                "args": dict(span["attrs"]),
            }
        )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": document["trace_id"],
            "dropped": document["dropped"],
        },
    }
    # Deferred import: repro.io pulls in the engine result types, and
    # the obs package must stay importable from every layer beneath them.
    from pathlib import Path

    from repro.io import write_json_atomic

    target = os.fspath(path)
    if not write_json_atomic(Path(target), payload, indent=1):
        raise OSError(f"could not write Chrome trace to {target}")
    return target


def top_spans(
    trace: Tracer | Mapping[str, Any], count: int = 3
) -> list[dict[str, Any]]:
    """The ``count`` longest non-root spans, for slow-request log lines."""
    document = trace_to_dict(trace)
    candidates = [span for span in document["spans"] if span["parent"] is not None]
    candidates.sort(key=lambda span: (-span["dur_us"], span["id"]))
    return [
        {"name": span["name"], "ms": round(span["dur_us"] / 1000, 3)}
        for span in candidates[:count]
    ]


def render_trace(
    trace: Tracer | Mapping[str, Any], *, max_attrs: int = 6
) -> str:
    """Render the trace as an indented text tree, one span per line."""
    document = trace_to_dict(trace)
    spans = document["spans"]
    children: dict[int | None, list[dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)
    total_us = sum(span["dur_us"] for span in children.get(None, ()))
    header = (
        f"trace {document['trace_id'] or '<none>'}"
        f" (pid {document['pid']}, {len(spans)} spans,"
        f" {total_us / 1000:.2f} ms"
    )
    if document["dropped"]:
        header += f", {document['dropped']} dropped"
    header += ")"
    lines = [header]

    def _attr_text(span: Mapping[str, Any]) -> str:
        items = sorted(span["attrs"].items())
        if len(items) > max_attrs:
            items = items[:max_attrs] + [("...", len(span["attrs"]) - max_attrs)]
        parts = []
        for key, value in items:
            text = str(value)
            if len(text) > 40:
                text = text[:37] + "..."
            parts.append(f"{key}={text}")
        return "  ".join(parts)

    def _walk(parent: int | None, prefix: str) -> None:
        siblings = children.get(parent, [])
        for index, span in enumerate(siblings):
            last = index == len(siblings) - 1
            connector = "" if parent is None else ("`- " if last else "|- ")
            duration = f"{span['dur_us'] / 1000:9.2f} ms"
            attr_text = _attr_text(span)
            line = f"{prefix}{connector}{span['name']}  {duration}"
            if attr_text:
                line += f"  {attr_text}"
            lines.append(line)
            extension = "" if parent is None else ("   " if last else "|  ")
            _walk(span["id"], prefix + extension)

    _walk(None, "")
    return "\n".join(lines)

"""Hierarchical spans with monotonic-clock durations.

A :class:`Tracer` records a tree of :class:`Span` objects for one
request.  Spans nest through a context-manager API::

    tracer = Tracer()
    with tracer.span("request", kind="batch"):
        with tracer.span("plan") as span:
            span.set("planned", 3)

Timestamps are ``time.perf_counter()`` offsets from the tracer's own
origin, so a finished trace is self-contained and survives the wire:
:meth:`Tracer.document` emits a plain-dict form (microsecond integers)
that rides a daemon response envelope unchanged.

Cross-process propagation: a worker builds its own ``Tracer``, returns
:meth:`Tracer.shipment`, and the dispatching process folds it in with
:meth:`Tracer.merge_shipment` — shipped spans are re-parented under the
dispatch span, shifted onto the parent's clock, clamped into the
dispatch window, and placed on a fresh *lane* (rendered as a separate
thread row in the Chrome export).

The module-level :data:`ACTIVE` global lets leaf layers (kernel
convolutions, sampler rounds, store tiers) emit spans without threading
a tracer through every call signature: the engine activates its tracer
for the duration of a request via :func:`activate`, and hot paths guard
on ``ACTIVE is not None`` — a single global load when tracing is off.
"""

from __future__ import annotations

import hashlib
import os
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

__all__ = [
    "ACTIVE",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "activate",
    "label",
    "maybe_span",
]


class Span:
    """One timed node in a trace tree.  Mutable, slot-backed."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs", "lane")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attrs: dict[str, Any],
        lane: int = 0,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = start
        self.attrs = attrs
        self.lane = lane

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(id={self.span_id}, parent={self.parent_id}, "
            f"name={self.name!r}, dur={self.duration * 1e3:.3f}ms)"
        )


class _SpanHandle:
    """Context manager closing one open span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span, failed=exc_type is not None)
        return False


class _NullSpan:
    """Inert stand-in satisfying the ``Span`` surface used by callers."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0


class _NullHandle:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects the spans of one request into a self-contained document.

    ``max_spans`` bounds memory on pathological plans: once the creation
    budget is exhausted, :meth:`span` hands back a no-op handle (and
    bumps ``dropped``), so descendants of a dropped span simply parent
    to the nearest *recorded* ancestor — the tree never contains
    orphans.  A span that is created is always recorded.
    """

    enabled = True

    def __init__(self, max_spans: int = 20_000) -> None:
        self.trace_id = uuid.uuid4().hex[:16]
        self.pid = os.getpid()
        self.max_spans = max_spans
        self.dropped = 0
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._created = 0
        self._next_id = 1
        self._next_lane = 1
        self._origin = time.perf_counter()

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer's origin (monotonic)."""
        return time.perf_counter() - self._origin

    # -- span creation -------------------------------------------------

    @property
    def current_id(self) -> int | None:
        """Id of the innermost open span, or ``None`` at the root."""
        return self._stack[-1].span_id if self._stack else None

    def span(self, name: str, **attrs: Any) -> _SpanHandle | _NullHandle:
        """Open a child span of the innermost open span."""
        if self._created >= self.max_spans:
            self.dropped += 1
            return _NULL_HANDLE
        self._created += 1
        span = Span(self._next_id, self.current_id, name, self.now(), attrs)
        self._next_id += 1
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span, *, failed: bool) -> None:
        span.end = self.now()
        if failed:
            span.attrs["error"] = True
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # tolerate out-of-order exits rather than corrupt the tree
            try:
                self._stack.remove(span)
            except ValueError:
                pass
        self.spans.append(span)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent_id: int | None = None,
        lane: int = 0,
        **attrs: Any,
    ) -> Span | None:
        """Record an already-timed span (e.g. a dispatch window)."""
        if self._created >= self.max_spans:
            self.dropped += 1
            return None
        self._created += 1
        parent = parent_id if parent_id is not None else self.current_id
        span = Span(self._next_id, parent, name, start, dict(attrs), lane)
        self._next_id += 1
        span.end = max(end, start)
        self.spans.append(span)
        return span

    def new_lane(self) -> int:
        """Allocate a rendering lane (Chrome thread row) for shipped spans."""
        lane = self._next_lane
        self._next_lane += 1
        return lane

    # -- cross-process propagation ------------------------------------

    def shipment(self) -> dict[str, Any]:
        """Pack recorded spans for transport back to the dispatcher."""
        return {
            "pid": self.pid,
            "dropped": self.dropped,
            "spans": [
                {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                    "attrs": dict(span.attrs),
                }
                for span in self.spans
            ],
        }

    def merge_shipment(
        self,
        shipment: Mapping[str, Any],
        *,
        parent_id: int | None,
        at: float,
        until: float | None = None,
        lane: int | None = None,
    ) -> None:
        """Fold a worker's shipped spans under ``parent_id``.

        The worker's clock is unrelated to ours, so its earliest span is
        aligned to ``at`` (the dispatch span's start) and everything is
        clamped into ``[at, until]`` — the worker's wall time is a
        subset of the submit-to-merge window by construction, so the
        clamp only guards against clock jitter.
        """
        spans = shipment.get("spans") or []
        self.dropped += int(shipment.get("dropped", 0))
        if not spans:
            return
        pid = shipment.get("pid")
        if lane is None:
            lane = self.new_lane()
        shift = at - min(span["start"] for span in spans)
        id_map: dict[int, int] = {}
        kept: list[Mapping[str, Any]] = []
        for span in spans:
            if self._created >= self.max_spans:
                self.dropped += 1
                continue
            self._created += 1
            id_map[span["id"]] = self._next_id
            self._next_id += 1
            kept.append(span)
        for span in kept:
            remote_parent = span.get("parent")
            parent = (
                id_map.get(remote_parent, parent_id)
                if remote_parent is not None
                else parent_id
            )
            start = max(span["start"] + shift, at)
            end = span["end"] + shift
            if until is not None:
                # Both bounds clamp into the window: a worker whose
                # recorded wall time exceeds submit-to-merge (clock
                # jitter) must not leak spans past the dispatch span.
                start = min(start, until)
                end = min(end, until)
            attrs = dict(span.get("attrs") or {})
            if pid is not None:
                attrs.setdefault("pid", pid)
            merged = Span(
                id_map[span["id"]], parent, span["name"], start, attrs, lane
            )
            merged.end = max(end, start)
            self.spans.append(merged)

    # -- output --------------------------------------------------------

    def document(self) -> dict[str, Any]:
        """Plain-dict form of the finished trace (wire/export format).

        Spans still open at call time are included with their current
        elapsed duration and an ``open`` attribute, so a document taken
        mid-request is still well-formed.
        """
        now = self.now()
        records = []
        for span in self.spans:
            records.append(_span_record(span, span.end))
        for span in self._stack:
            record = _span_record(span, now)
            record["attrs"]["open"] = True
            records.append(record)
        records.sort(key=lambda record: (record["start_us"], record["id"]))
        return {
            "trace_id": self.trace_id,
            "pid": self.pid,
            "dropped": self.dropped,
            "spans": records,
        }


def _span_record(span: Span, end: float) -> dict[str, Any]:
    start_us = int(round(span.start * 1e6))
    end_us = int(round(end * 1e6))
    return {
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "start_us": start_us,
        "dur_us": max(0, end_us - start_us),
        "lane": span.lane,
        "attrs": _portable_attrs(span.attrs),
    }


def _portable_attrs(attrs: Mapping[str, Any]) -> dict[str, Any]:
    """Coerce attributes to JSON-safe scalars (repr for anything exotic)."""
    portable: dict[str, Any] = {}
    for key, value in attrs.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            portable[key] = value
        else:
            portable[key] = repr(value)
    return portable


class NullTracer:
    """Free stand-in used when tracing is off: records nothing."""

    enabled = False
    trace_id = None
    dropped = 0

    __slots__ = ()

    def now(self) -> float:
        return 0.0

    @property
    def current_id(self) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> _NullHandle:
        return _NULL_HANDLE

    def add_span(self, name: str, start: float, end: float, **kwargs: Any) -> None:
        return None

    def document(self) -> dict[str, Any]:
        return {"trace_id": None, "pid": os.getpid(), "dropped": 0, "spans": []}


NULL_TRACER = NullTracer()


def maybe_span(tracer: Tracer | None, name: str, **attrs: Any):
    """``tracer.span(...)`` when tracing, a free no-op handle otherwise."""
    if tracer is None:
        return _NULL_HANDLE
    return tracer.span(name, **attrs)


#: The tracer of the request currently executing in this process, if any.
#: Leaf layers (kernels, sampler, store tiers) read this instead of
#: growing a ``tracer`` parameter; requests are serialized per process
#: (the daemon holds ``_engine_lock`` around engine work), so one slot
#: suffices.
ACTIVE: Tracer | None = None


@contextmanager
def activate(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Install ``tracer`` as :data:`ACTIVE` for the duration of a block."""
    global ACTIVE
    if tracer is None:
        yield None
        return
    previous = ACTIVE
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = previous


def label(value: Any) -> str:
    """Short stable digest of any value, for span attributes."""
    return hashlib.sha256(repr(value).encode("utf-8")).hexdigest()[:12]

"""Observability: zero-dependency request tracing for the whole stack.

The :mod:`repro.obs.tracing` module produces hierarchical spans
(``request -> plan -> prune -> node:* -> store.* / kernel.convolve /
sampler.round``) with monotonic-clock durations; :mod:`repro.obs.export`
turns a finished trace document into a Chrome ``trace_event`` JSON file
(loadable in ``about:tracing`` / Perfetto) or a compact text tree.

Tracing is opt-in per request and costs nothing when off: every hot
path guards on ``tracer is None`` (or the module-level
:data:`repro.obs.tracing.ACTIVE` global being ``None``), and the
:data:`NULL_TRACER` singleton swallows spans without recording — a
property the benchmark suite asserts.
"""

from repro.obs.export import (
    export_chrome,
    render_trace,
    top_spans,
    trace_from_dict,
    trace_to_dict,
)
from repro.obs.tracing import (
    ACTIVE,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    label,
    maybe_span,
)

__all__ = [
    "ACTIVE",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "activate",
    "export_chrome",
    "label",
    "maybe_span",
    "render_trace",
    "top_spans",
    "trace_from_dict",
    "trace_to_dict",
]

"""Lifted (extensional) inference for hierarchical self-join-free CQ¬s.

Computes ``P(D ⊨ q)`` over a tuple-independent database in polynomial
time, mirroring the CntSat recursion with probabilities instead of count
vectors (Dalvi-Suciu safe-plan style, extended to safe negation as in
Fink & Olteanu):

* independent components multiply;
* a root variable turns the component into an independent OR over its
  value slices: ``1 - Π_a (1 - P(slice_a))``;
* the ground base case multiplies ``p(f)`` for positive atoms and
  ``1 - p(f)`` for negative ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.errors import NotHierarchicalError, SelfJoinError
from repro.core.facts import Constant, Fact
from repro.core.hierarchy import is_hierarchical
from repro.core.query import Atom, ConjunctiveQuery, Variable
from repro.probabilistic.tid import TupleIndependentDatabase


@dataclass(frozen=True)
class _ScopedAtom:
    atom: Atom
    facts: tuple[tuple[Fact, Fraction], ...]


def query_probability_lifted(
    tid: TupleIndependentDatabase, query: ConjunctiveQuery
) -> Fraction:
    """``P(D ⊨ q)`` for a hierarchical self-join-free CQ¬, in polynomial time."""
    query = query.as_boolean()
    if not query.is_self_join_free:
        raise SelfJoinError(
            f"lifted inference requires a self-join-free query, got {query!r}"
        )
    if not is_hierarchical(query):
        raise NotHierarchicalError(
            f"lifted inference requires a hierarchical query, got {query!r}"
        )
    scope = [
        _ScopedAtom(
            atom,
            tuple(sorted(
                ((item, tid.probability(item)) for item in tid.relation(atom.relation)),
                key=lambda pair: repr(pair[0]),
            )),
        )
        for atom in query.atoms
    ]
    return _probability(scope)


def _probability(scope: list[_ScopedAtom]) -> Fraction:
    restricted = [
        _ScopedAtom(
            scoped.atom,
            tuple(
                (item, probability)
                for item, probability in scoped.facts
                if scoped.atom.matches(item)
            ),
        )
        for scoped in scope
    ]
    result = Fraction(1)
    for component in _components(restricted):
        result *= _component_probability(component)
        if result == 0:
            return result
    return result


def _components(scope: list[_ScopedAtom]) -> list[list[_ScopedAtom]]:
    n = len(scope)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner: dict[Variable, int] = {}
    for index, scoped in enumerate(scope):
        for var in scoped.atom.variables:
            if var in owner:
                root_a, root_b = find(owner[var]), find(index)
                if root_a != root_b:
                    parent[root_b] = root_a
            else:
                owner[var] = index
    groups: dict[int, list[_ScopedAtom]] = {}
    for index, scoped in enumerate(scope):
        groups.setdefault(find(index), []).append(scoped)
    return list(groups.values())


def _component_probability(component: list[_ScopedAtom]) -> Fraction:
    variables = frozenset(
        var for scoped in component for var in scoped.atom.variables
    )
    if not variables:
        return _ground_probability(component)

    roots = None
    for scoped in component:
        atom_vars = scoped.atom.variables
        roots = atom_vars if roots is None else roots & atom_vars
    if not roots:
        raise NotHierarchicalError(
            "connected subquery without a root variable: "
            + ", ".join(repr(scoped.atom) for scoped in component)
        )
    root = min(roots, key=lambda var: var.name)

    candidates: set[Constant] = set()
    positions: dict[int, int] = {}
    for index, scoped in enumerate(component):
        positions[index] = scoped.atom.terms.index(root)
        for item, _ in scoped.facts:
            candidates.add(item.args[positions[index]])

    all_slices_fail = Fraction(1)
    for value in sorted(candidates, key=repr):
        slice_scope = []
        for index, scoped in enumerate(component):
            at = positions[index]
            slice_scope.append(
                _ScopedAtom(
                    scoped.atom.substitute({root: value}),
                    tuple(
                        (item, probability)
                        for item, probability in scoped.facts
                        if item.args[at] == value
                    ),
                )
            )
        all_slices_fail *= 1 - _probability(slice_scope)
        if all_slices_fail == 0:
            break
    return 1 - all_slices_fail


def _ground_probability(component: list[_ScopedAtom]) -> Fraction:
    result = Fraction(1)
    for scoped in component:
        ground = scoped.atom.to_fact()
        probability = Fraction(0)
        for item, item_probability in scoped.facts:
            if item == ground:
                probability = item_probability
                break
        result *= (1 - probability) if scoped.atom.negated else probability
        if result == 0:
            return result
    return result

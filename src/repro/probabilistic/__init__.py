"""Tuple-independent probabilistic databases and query evaluation (Section 4.3)."""

from repro.probabilistic.deterministic import (
    infer_deterministic_relations,
    query_probability_with_deterministic,
)
from repro.probabilistic.lifted import query_probability_lifted
from repro.probabilistic.tid import TupleIndependentDatabase, uniform_tid
from repro.probabilistic.worlds import query_probability_by_worlds

__all__ = [
    "TupleIndependentDatabase",
    "infer_deterministic_relations",
    "query_probability_by_worlds",
    "query_probability_lifted",
    "query_probability_with_deterministic",
    "uniform_tid",
]

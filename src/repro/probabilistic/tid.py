"""Tuple-independent probabilistic databases (TIDs).

A TID assigns each fact an independent marginal probability; a query's
probability is the total probability of the possible worlds satisfying it.
The paper's Section 4.3 observes that the ExoShap machinery transfers to
query evaluation over TIDs with *deterministic* relations (probability 1),
generalizing Fink and Olteanu's dichotomy — Theorem 4.10.

Probabilities are :class:`fractions.Fraction` so the lifted and
brute-force engines can be compared exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Mapping

from repro.core.errors import SchemaError
from repro.core.facts import Fact


class TupleIndependentDatabase:
    """A finite map from facts to independent marginal probabilities."""

    def __init__(self, probabilities: Mapping[Fact, Fraction | int] | None = None):
        self._probabilities: dict[Fact, Fraction] = {}
        self._arities: dict[str, int] = {}
        if probabilities:
            for item, probability in probabilities.items():
                self.add(item, probability)

    def add(self, item: Fact, probability: Fraction | int | float) -> None:
        probability = Fraction(probability).limit_denominator(10**12) if isinstance(
            probability, float
        ) else Fraction(probability)
        if not 0 <= probability <= 1:
            raise ValueError(f"probability {probability} outside [0, 1]")
        known = self._arities.setdefault(item.relation, item.arity)
        if known != item.arity:
            raise SchemaError(
                f"relation {item.relation} used with arities {known} and {item.arity}"
            )
        self._probabilities[item] = probability

    def add_deterministic(self, item: Fact) -> None:
        self.add(item, Fraction(1))

    def probability(self, item: Fact) -> Fraction:
        return self._probabilities.get(item, Fraction(0))

    @property
    def facts(self) -> frozenset[Fact]:
        return frozenset(self._probabilities)

    def relation(self, name: str) -> frozenset[Fact]:
        return frozenset(
            item for item in self._probabilities if item.relation == name
        )

    def relation_is_deterministic(self, name: str) -> bool:
        """Does every fact of the relation have probability exactly 1?"""
        return all(
            probability == 1
            for item, probability in self._probabilities.items()
            if item.relation == name
        )

    @property
    def deterministic_facts(self) -> frozenset[Fact]:
        return frozenset(
            item
            for item, probability in self._probabilities.items()
            if probability == 1
        )

    @property
    def uncertain_facts(self) -> frozenset[Fact]:
        return frozenset(
            item
            for item, probability in self._probabilities.items()
            if probability != 1
        )

    def items(self) -> Iterator[tuple[Fact, Fraction]]:
        return iter(self._probabilities.items())

    def __len__(self) -> int:
        return len(self._probabilities)

    def __contains__(self, item: Fact) -> bool:
        return item in self._probabilities

    def active_domain(self) -> frozenset:
        return frozenset(
            value for item in self._probabilities for value in item.args
        )

    def __repr__(self) -> str:
        certain = len(self.deterministic_facts)
        return (
            f"TupleIndependentDatabase({len(self)} facts, {certain} deterministic)"
        )


def uniform_tid(
    facts: Iterable[Fact], probability: Fraction | int = Fraction(1, 2)
) -> TupleIndependentDatabase:
    """All facts share one probability (handy for tests and benches)."""
    tid = TupleIndependentDatabase()
    for item in facts:
        tid.add(item, probability)
    return tid

"""Theorem 4.10: probabilistic query evaluation with deterministic relations.

Fink & Olteanu's dichotomy classifies CQ¬s as polynomial iff hierarchical.
The paper observes that the ExoShap rewriting (Section 4.2) transfers:
with a set ``X`` of *deterministic* relations (every fact has probability
1), evaluation is polynomial iff the query has no non-hierarchical path
w.r.t. ``X``.  This module performs exactly that: reuse the Algorithm 1
rewriting with deterministic relations in the exogenous role, then run
lifted inference on the rewritten hierarchical instance.
"""

from __future__ import annotations

from fractions import Fraction
from typing import AbstractSet

from repro.core.database import Database
from repro.core.query import ConjunctiveQuery
from repro.probabilistic.lifted import query_probability_lifted
from repro.probabilistic.tid import TupleIndependentDatabase
from repro.shapley.exoshap import rewrite_to_hierarchical


def infer_deterministic_relations(
    tid: TupleIndependentDatabase, query: ConjunctiveQuery
) -> frozenset[str]:
    """Relations of the query whose facts all have probability 1."""
    inferred = set()
    for name in query.relation_names:
        if tid.relation_is_deterministic(name):
            inferred.add(name)
    return frozenset(inferred)


def query_probability_with_deterministic(
    tid: TupleIndependentDatabase,
    query: ConjunctiveQuery,
    deterministic_relations: AbstractSet[str] | None = None,
) -> Fraction:
    """``P(D ⊨ q)`` exploiting deterministic relations (Theorem 4.10).

    Raises :class:`repro.core.errors.NotHierarchicalError` when the query
    has a non-hierarchical path w.r.t. the deterministic relations — the
    FP^#P-complete side of the theorem.
    """
    query = query.as_boolean()
    if deterministic_relations is None:
        deterministic_relations = infer_deterministic_relations(tid, query)
    for name in deterministic_relations:
        if not tid.relation_is_deterministic(name):
            raise ValueError(
                f"relation {name} is declared deterministic but has a fact"
                " with probability < 1"
            )

    # Stage the TID as a Database: deterministic facts exogenous, the rest
    # endogenous — precisely the role split the ExoShap rewriting expects.
    staged = Database()
    probabilities: dict = {}
    for item, probability in tid.items():
        if probability == 1:
            staged.add_exogenous(item)
        else:
            staged.add_endogenous(item)
            probabilities[item] = probability
    rewrite = rewrite_to_hierarchical(staged, query, deterministic_relations)

    rewritten_tid = TupleIndependentDatabase()
    for item in rewrite.database.exogenous:
        rewritten_tid.add_deterministic(item)
    for item in rewrite.database.endogenous:
        rewritten_tid.add(item, probabilities[item])
    return query_probability_lifted(rewritten_tid, rewrite.query)

"""Possible-world enumeration: the brute-force probabilistic oracle.

``P(D ⊨ q) = Σ_{W ⊆ uncertain} Π p(W) · 1[(deterministic ∪ W) ⊨ q]`` —
exponential in the number of uncertain facts, used to validate the lifted
engine.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from repro.core.evaluation import holds
from repro.core.query import BooleanQuery
from repro.probabilistic.tid import TupleIndependentDatabase

MAX_UNCERTAIN_FACTS = 20


def query_probability_by_worlds(
    tid: TupleIndependentDatabase, query: BooleanQuery
) -> Fraction:
    """Exact query probability by enumerating all possible worlds."""
    uncertain = sorted(tid.uncertain_facts, key=repr)
    if len(uncertain) > MAX_UNCERTAIN_FACTS:
        raise ValueError(
            f"enumerating 2^{len(uncertain)} worlds is not a computation;"
            " use the lifted engine"
        )
    deterministic = list(tid.deterministic_facts)
    total = Fraction(0)
    for size in range(len(uncertain) + 1):
        for subset in itertools.combinations(uncertain, size):
            world = deterministic + list(subset)
            if not holds(query, world):
                continue
            weight = Fraction(1)
            chosen = set(subset)
            for item in uncertain:
                probability = tid.probability(item)
                weight *= probability if item in chosen else 1 - probability
            total += weight
    return total

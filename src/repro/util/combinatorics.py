"""Exact combinatorics used by the Shapley algorithms.

All functions operate on plain Python integers (arbitrary precision) or
:class:`fractions.Fraction`, never floats: the paper's results (e.g. the
running-example value ``-3/28``) are rational numbers and the library
reproduces them exactly.

Count vectors
-------------
Several algorithms (notably :mod:`repro.shapley.cntsat`) manipulate *count
vectors*: a list ``c`` where ``c[k]`` is the number of ``k``-subsets of some
fact set satisfying a property.  Combining independent fact sets corresponds
to polynomial multiplication of their vectors, provided here as
:func:`convolve` / :func:`convolve_many`.

This module is the stable public façade; the heavy lifting lives in the
tiered kernel layer (:mod:`repro.util.kernels`): size-tiered convolution
(schoolbook / single-big-int limb packing / optional gmpy2, overridable
via ``REPRO_KERNEL``), balanced product trees, and memoized
factorial/binomial/Shapley-weight tables.  Every kernel is exact and
bit-identical to the schoolbook reference.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb
from typing import Sequence

from repro.util import kernels


def binomial(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)``, zero outside ``0 <= k <= n``."""
    if k < 0 or n < 0 or k > n:
        return 0
    return comb(n, k)


def falling_factorial(n: int, k: int) -> int:
    """The product ``n * (n - 1) * ... * (n - k + 1)`` (``k`` terms)."""
    if k < 0:
        raise ValueError("falling_factorial requires k >= 0")
    result = 1
    for i in range(k):
        result *= n - i
    return result


def binomial_vector(n: int) -> list[int]:
    """Vector ``[C(n, 0), C(n, 1), ..., C(n, n)]``.

    This is the count vector of a set of ``n`` "free" facts: any ``k`` of
    them can be chosen without affecting query satisfaction.  Rows are
    memoized in the kernel layer; callers get a fresh list they may
    mutate freely.
    """
    if n < 0:
        raise ValueError("binomial_vector requires n >= 0")
    return list(kernels.binomial_row(n))


def convolve(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """Polynomial (Cauchy) product of two count vectors.

    If ``left[i]`` counts ``i``-subsets of fact set ``A`` with property *P*
    and ``right[j]`` counts ``j``-subsets of a disjoint fact set ``B`` with
    property *Q*, the result counts ``k``-subsets of ``A ∪ B`` whose
    restriction to ``A`` has *P* and restriction to ``B`` has *Q*.

    Dispatches to the size-tiered exact kernels of
    :mod:`repro.util.kernels` (``REPRO_KERNEL`` forces one tier); every
    tier returns bit-identical integers.
    """
    return kernels.convolve(left, right)


def convolve_many(vectors: Sequence[Sequence[int]]) -> list[int]:
    """Convolution of an arbitrary number of count vectors.

    The empty product is the multiplicative identity ``[1]`` (the count
    vector of the empty fact set).  Factors reduce through a balanced
    product tree (:func:`repro.util.kernels.convolve_many`), which keeps
    big-int operand sizes even — bit-identical to the sequential fold.
    """
    return kernels.convolve_many(vectors)


def subtract_vectors(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """Element-wise ``left - right``, padding the shorter vector with zeros."""
    size = max(len(left), len(right))
    result = []
    for k in range(size):
        a = left[k] if k < len(left) else 0
        b = right[k] if k < len(right) else 0
        result.append(a - b)
    return result


def shapley_coefficient(num_players: int, coalition_size: int) -> Fraction:
    """Weight of a coalition in the subset form of the Shapley value.

    For a game with ``num_players`` players, a player joining a coalition of
    ``coalition_size`` other players receives weight
    ``coalition_size! * (num_players - coalition_size - 1)! / num_players!``.
    """
    if num_players <= 0:
        raise ValueError("shapley_coefficient requires at least one player")
    if not 0 <= coalition_size < num_players:
        raise ValueError(
            "coalition_size must lie in [0, num_players - 1], got "
            f"{coalition_size} for {num_players} players"
        )
    return kernels.shapley_coefficient_cached(num_players, coalition_size)

"""Exact-integer kernels under the library's ``Fraction`` surface.

Every exact result in the stack — serial, sharded, daemon-served,
delta-reused — bottoms out in two integer-arithmetic hot loops: count
vector convolution (:func:`repro.util.combinatorics.convolve`) and the
Lemma 3.2 weighted assembly that turns per-fact vector deltas into
Shapley values.  This module makes both fast while keeping the public
rational API bit-identical:

* **Tiered convolution kernels.**  ``schoolbook`` is the classic
  O(n^2) multiply-add loop, unbeatable for short vectors; ``packed``
  is a single-big-int kernel (Kronecker substitution: each count is a
  fixed-width limb of one padded integer, so CPython's subquadratic
  big-int multiplication performs the whole convolution in one
  multiply); ``gmpy`` is the same limb packing on top of ``gmpy2``'s
  GMP-backed multiply, used only when the optional dependency imports.
  :func:`convolve` picks a tier per call from the operand sizes; the
  ``REPRO_KERNEL`` environment variable (re-read at plan time by
  :func:`repro.engine.plan.build_plan`) forces one tier everywhere.
* **Balanced product trees.**  :func:`convolve_many` reduces a factor
  list pairwise in rounds instead of folding left, keeping operand
  sizes balanced — the shape under which the packed kernel's
  subquadratic multiply pays off most.
* **Shared weight tables.**  :func:`factorial_cached`,
  :func:`binomial_row` and :func:`shapley_weights` memoize the
  factorials, binomial vectors and Shapley coalition weights that the
  engine's assembly, the brute-force enumerations, and the generic game
  solvers previously recomputed per call site.
* **Deferred rational assembly.**  :class:`ShapleyAccumulator`
  accumulates ``sum_k k!(n-k-1)! * marginal_k`` as one integer over the
  common denominator ``n!`` and normalizes to a single ``Fraction`` at
  the end — one gcd per fact instead of one per coalition size.
  ``Fraction`` canonicalizes, so the result is bit-identical to the
  historical per-size ``Fraction`` multiply-add.

Every kernel is exact integer arithmetic; the Hypothesis suite
(``tests/test_kernels.py``) asserts each one equals ``schoolbook`` on
arbitrary vectors — including the negative entries
:func:`repro.util.combinatorics.subtract_vectors` can produce — and that
engine results are bit-identical across kernels, executors, and the
daemon.  Per-kernel call and plan-selection counters are process-wide
(:func:`kernel_stats`) and surface through ``engine.stats["kernel"]``
and the daemon's ``metrics`` operation.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from math import comb, factorial
from typing import Callable, Iterator, Sequence

from repro.obs import tracing as _tracing

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - the common case in CI
    _gmpy2 = None

#: Kernel tier names, as accepted by ``REPRO_KERNEL``.
AUTO = "auto"
SCHOOLBOOK = "schoolbook"
PACKED = "packed"
GMPY = "gmpy"
KERNEL_NAMES = (AUTO, SCHOOLBOOK, PACKED, GMPY)

#: Auto-tier cutover: schoolbook wins below this ``len(a) * len(b)``
#: work bound, the single-multiply packed kernel above it (measured
#: crossover is near 16x16 on CPython 3.11; 400 keeps a safety margin
#: so short-vector workloads never regress).
PACK_THRESHOLD = 400


def gmpy_available() -> bool:
    """Whether the optional GMP-backed kernel can run in this process."""
    return _gmpy2 is not None


@dataclass
class KernelStats:
    """Process-wide kernel accounting: who convolved, and how often.

    ``*_calls`` count executed pairwise convolutions per tier;
    ``tree_products`` counts balanced multi-factor products;
    ``plan_selections_*`` count the tier the planner predicted for each
    exact grounding task from its component size (the plan-time
    selection record, before any convolution runs).
    """

    schoolbook_calls: int = 0
    packed_calls: int = 0
    gmpy_calls: int = 0
    tree_products: int = 0
    plan_selections_schoolbook: int = 0
    plan_selections_packed: int = 0
    plan_selections_gmpy: int = 0

    def merge(self, other: "KernelStats") -> None:
        self.schoolbook_calls += other.schoolbook_calls
        self.packed_calls += other.packed_calls
        self.gmpy_calls += other.gmpy_calls
        self.tree_products += other.tree_products
        self.plan_selections_schoolbook += other.plan_selections_schoolbook
        self.plan_selections_packed += other.plan_selections_packed
        self.plan_selections_gmpy += other.plan_selections_gmpy

    def snapshot(self) -> "KernelStats":
        return KernelStats(
            self.schoolbook_calls,
            self.packed_calls,
            self.gmpy_calls,
            self.tree_products,
            self.plan_selections_schoolbook,
            self.plan_selections_packed,
            self.plan_selections_gmpy,
        )

    def delta(self, before: "KernelStats") -> "KernelStats":
        """The field-wise increase since ``before`` (clamped at zero).

        The clamp absorbs a concurrent :func:`reset_kernel_stats` —
        per-request scoping should never report negative work.
        """
        return KernelStats(
            max(0, self.schoolbook_calls - before.schoolbook_calls),
            max(0, self.packed_calls - before.packed_calls),
            max(0, self.gmpy_calls - before.gmpy_calls),
            max(0, self.tree_products - before.tree_products),
            max(
                0,
                self.plan_selections_schoolbook
                - before.plan_selections_schoolbook,
            ),
            max(0, self.plan_selections_packed - before.plan_selections_packed),
            max(0, self.plan_selections_gmpy - before.plan_selections_gmpy),
        )

    def __repr__(self) -> str:
        return (
            f"KernelStats(schoolbook_calls={self.schoolbook_calls},"
            f" packed_calls={self.packed_calls},"
            f" gmpy_calls={self.gmpy_calls},"
            f" tree_products={self.tree_products},"
            f" plan_selections_schoolbook={self.plan_selections_schoolbook},"
            f" plan_selections_packed={self.plan_selections_packed},"
            f" plan_selections_gmpy={self.plan_selections_gmpy})"
        )


_STATS = KernelStats()
#: The kernel forced by ``REPRO_KERNEL`` (``None`` = size-tiered auto).
_FORCED: str | None = None


def kernel_stats() -> KernelStats:
    """The live process-wide counters (mutating them is the hot path's job)."""
    return _STATS


def reset_kernel_stats() -> None:
    """Zero the process-wide counters (test isolation hook)."""
    global _STATS
    _STATS = KernelStats()


def refresh_from_environment() -> str:
    """Re-read ``REPRO_KERNEL`` and return the active kernel name.

    Called once per plan (:func:`repro.engine.plan.build_plan`), so an
    environment change takes effect on the next request without
    re-importing.  Unknown values degrade to ``auto`` and a forced
    ``gmpy`` without the optional dependency degrades to ``packed`` —
    the environment can tune kernels but never break a computation.
    """
    global _FORCED
    raw = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if raw in ("", AUTO) or raw not in KERNEL_NAMES:
        _FORCED = None
    elif raw == GMPY and _gmpy2 is None:
        _FORCED = PACKED
    else:
        _FORCED = raw
    return active_kernel_name()


def active_kernel_name() -> str:
    """``auto`` or the tier ``REPRO_KERNEL`` currently forces."""
    return AUTO if _FORCED is None else _FORCED


def kernel_description() -> str:
    """A one-line human description of the serial kernel configuration."""
    if _FORCED is not None:
        return f"{_FORCED} (forced via REPRO_KERNEL)"
    fast = GMPY if _gmpy2 is not None else PACKED
    return f"auto (schoolbook<{PACK_THRESHOLD}, then {fast})"


@contextmanager
def use_kernel(name: str) -> Iterator[str]:
    """Force one kernel tier for the duration of a block (tests, benches)."""
    if name not in KERNEL_NAMES:
        raise ValueError(f"unknown kernel {name!r} (expected one of {KERNEL_NAMES})")
    global _FORCED
    previous = _FORCED
    if name == AUTO:
        _FORCED = None
    elif name == GMPY and _gmpy2 is None:
        _FORCED = PACKED
    else:
        _FORCED = name
    try:
        yield active_kernel_name()
    finally:
        _FORCED = previous


# ----------------------------------------------------------------------
# Pairwise convolution kernels
# ----------------------------------------------------------------------
def convolve_schoolbook(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """The O(n^2) multiply-add reference kernel (and short-vector tier)."""
    if not left or not right:
        return []
    result = [0] * (len(left) + len(right) - 1)
    for i, a in enumerate(left):
        if a == 0:
            continue
        for j, b in enumerate(right):
            if b:
                result[i + j] += a * b
    return result


def _pack(vector: Sequence[int], limb: int) -> int:
    """Non-negative limbs into one little-endian integer, ``limb`` bytes each."""
    return int.from_bytes(
        b"".join(value.to_bytes(limb, "little") for value in vector), "little"
    )


def _convolve_packed_nonneg(
    left: Sequence[int],
    right: Sequence[int],
    multiply: Callable[[int, int], int],
) -> list[int]:
    """Kronecker substitution over non-negative vectors: one big multiply.

    Each coefficient of the product is bounded by ``min(len(left),
    len(right)) * max(left) * max(right)``, so a limb width strictly
    above that bound makes the limbs of the product integer exactly the
    convolution — no carries ever cross a limb boundary.
    """
    n = len(left) + len(right) - 1
    max_left = max(left)
    max_right = max(right)
    if max_left == 0 or max_right == 0:
        return [0] * n
    bound = min(len(left), len(right)) * max_left * max_right
    limb = bound.bit_length() // 8 + 1
    product = multiply(_pack(left, limb), _pack(right, limb))
    raw = product.to_bytes(n * limb, "little")
    return [
        int.from_bytes(raw[index * limb : (index + 1) * limb], "little")
        for index in range(n)
    ]


def _gmpy_multiply(a: int, b: int) -> int:
    return int(_gmpy2.mpz(a) * _gmpy2.mpz(b))


def convolve_packed(
    left: Sequence[int],
    right: Sequence[int],
    multiply: Callable[[int, int], int] = int.__mul__,
) -> list[int]:
    """The single-big-int kernel, exact for arbitrary (signed) integers.

    Count vectors are non-negative on every real engine path, so the
    common case is one multiply.  Signed inputs (possible through the
    public :func:`repro.util.combinatorics.convolve` on
    ``subtract_vectors`` output) split into positive/negative parts —
    four non-negative convolutions recombined exactly.
    """
    if not left or not right:
        return []
    if min(left) >= 0 and min(right) >= 0:
        return _convolve_packed_nonneg(left, right, multiply)
    left_pos = [value if value > 0 else 0 for value in left]
    left_neg = [-value if value < 0 else 0 for value in left]
    right_pos = [value if value > 0 else 0 for value in right]
    right_neg = [-value if value < 0 else 0 for value in right]
    pos_pos = _convolve_packed_nonneg(left_pos, right_pos, multiply)
    neg_neg = _convolve_packed_nonneg(left_neg, right_neg, multiply)
    pos_neg = _convolve_packed_nonneg(left_pos, right_neg, multiply)
    neg_pos = _convolve_packed_nonneg(left_neg, right_pos, multiply)
    return [
        pos_pos[index] + neg_neg[index] - pos_neg[index] - neg_pos[index]
        for index in range(len(pos_pos))
    ]


def convolve_gmpy(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """The packed kernel over gmpy2's GMP multiply (optional dependency)."""
    if _gmpy2 is None:
        raise RuntimeError("gmpy2 is not installed; the gmpy kernel is unavailable")
    return convolve_packed(left, right, _gmpy_multiply)


def tier_for_sizes(left_size: int, right_size: int) -> str:
    """The auto tier for one pairwise convolution of these operand sizes."""
    if _FORCED is not None:
        return _FORCED
    if left_size * right_size < PACK_THRESHOLD:
        return SCHOOLBOOK
    return GMPY if _gmpy2 is not None else PACKED


def convolve(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """Tiered pairwise convolution: the library-wide hot-path entry point."""
    if not left or not right:
        return []
    tier = tier_for_sizes(len(left), len(right))
    if _tracing.ACTIVE is not None:
        with _tracing.ACTIVE.span(
            "kernel.convolve", tier=tier, left=len(left), right=len(right)
        ):
            return _convolve_tier(left, right, tier)
    return _convolve_tier(left, right, tier)


def _convolve_tier(
    left: Sequence[int], right: Sequence[int], tier: str
) -> list[int]:
    if tier == SCHOOLBOOK:
        _STATS.schoolbook_calls += 1
        return convolve_schoolbook(left, right)
    if tier == GMPY:
        _STATS.gmpy_calls += 1
        return convolve_packed(left, right, _gmpy_multiply)
    _STATS.packed_calls += 1
    return convolve_packed(left, right)


def convolve_many(vectors: Sequence[Sequence[int]]) -> list[int]:
    """Balanced product tree over a factor list (empty product = ``[1]``).

    Pairwise reduction in rounds keeps the operand sizes of every
    multiply balanced, which is where the packed kernel's subquadratic
    big-int multiplication beats the left fold's long-times-short chain.
    Convolution is associative over exact integers, so the result is
    bit-identical to the sequential fold.
    """
    if any(not vector for vector in vectors):
        # The historical fold semantics: one empty factor nulls the product.
        return []
    items: list[Sequence[int]] = [vector for vector in vectors]
    if not items:
        return [1]
    if len(items) > 1:
        _STATS.tree_products += 1
    while len(items) > 1:
        items = [
            convolve(items[index], items[index + 1])
            if index + 1 < len(items)
            else items[index]
            for index in range(0, len(items), 2)
        ]
    return list(items[0])


# ----------------------------------------------------------------------
# Shared weight tables and deferred rational assembly
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def factorial_cached(n: int) -> int:
    """Memoized ``n!`` (the common Shapley denominator)."""
    return factorial(n)


@lru_cache(maxsize=4096)
def binomial_row(n: int) -> tuple[int, ...]:
    """Memoized ``(C(n, 0), ..., C(n, n))`` — the free-fact count vector."""
    if n < 0:
        raise ValueError("binomial_row requires n >= 0")
    return tuple(comb(n, k) for k in range(n + 1))


@lru_cache(maxsize=2048)
def shapley_weights(num_players: int) -> tuple[int, ...]:
    """Integer Shapley weight numerators over the denominator ``n!``.

    ``shapley_weights(n)[k] == k! * (n - k - 1)!`` — the coalition
    weight of size ``k`` times ``n!``, shared by every assembly loop in
    the library (engine results, brute force, generic games).
    """
    if num_players <= 0:
        raise ValueError("shapley_weights requires at least one player")
    facts = [1] * num_players
    for index in range(1, num_players):
        facts[index] = facts[index - 1] * index
    return tuple(
        facts[k] * facts[num_players - 1 - k] for k in range(num_players)
    )


@lru_cache(maxsize=65536)
def shapley_coefficient_cached(num_players: int, coalition_size: int) -> Fraction:
    """Memoized ``k!(n-k-1)!/n!`` from the shared weight table."""
    return Fraction(
        shapley_weights(num_players)[coalition_size],
        factorial_cached(num_players),
    )


class ShapleyAccumulator:
    """Deferred Fraction assembly of one player's Shapley value.

    Accumulates ``sum_k k!(n-k-1)! * marginal_k`` exactly — as a plain
    integer while every marginal is an integer, promoting to ``Fraction``
    only if a rational marginal arrives (generic games) — and divides by
    ``n!`` once at the end.  ``Fraction`` canonicalizes, so the result
    is bit-identical to the historical per-size ``Fraction``
    multiply-add at a fraction of the gcd work.
    """

    __slots__ = ("_weights", "_denominator", "_total")

    def __init__(self, num_players: int) -> None:
        self._weights = shapley_weights(num_players)
        self._denominator = factorial_cached(num_players)
        self._total: int | Fraction = 0

    def add(self, coalition_size: int, marginal: int | Fraction) -> None:
        """Fold in one coalition's marginal contribution at ``coalition_size``."""
        self._total += self._weights[coalition_size] * marginal

    def value(self) -> Fraction:
        """The assembled Shapley value, normalized exactly once."""
        if isinstance(self._total, Fraction):
            return self._total / self._denominator
        return Fraction(self._total, self._denominator)


def note_plan_selection(component_size: int) -> str:
    """Record the tier the planner expects for one exact grounding task.

    The planner calls this per planned ``cntsat``/``exoshap`` task with
    the component's endogenous fact count — the length scale of the
    task's top-level convolutions — so ``stats["kernel"]`` shows which
    tier each planned task was steered to before execution starts.
    Returns the predicted tier name.
    """
    tier = tier_for_sizes(component_size + 1, component_size + 1)
    if tier == SCHOOLBOOK:
        _STATS.plan_selections_schoolbook += 1
    elif tier == GMPY:
        _STATS.plan_selections_gmpy += 1
    else:
        _STATS.plan_selections_packed += 1
    return tier


def kernel_metrics_document() -> dict:
    """The JSON form of the kernel layer for the daemon's ``metrics`` op."""
    return {
        "active": active_kernel_name(),
        "gmpy_available": gmpy_available(),
        "counters": {
            name: value
            for name, value in vars(_STATS.snapshot()).items()
            if isinstance(value, int)
        },
    }


# Honor REPRO_KERNEL from process start (spawned workers re-import and
# pick the variable up here; forked workers inherit the parent's state).
refresh_from_environment()


__all__ = [
    "AUTO",
    "GMPY",
    "KERNEL_NAMES",
    "PACKED",
    "PACK_THRESHOLD",
    "SCHOOLBOOK",
    "KernelStats",
    "ShapleyAccumulator",
    "active_kernel_name",
    "binomial_row",
    "convolve",
    "convolve_gmpy",
    "convolve_many",
    "convolve_packed",
    "convolve_schoolbook",
    "factorial_cached",
    "gmpy_available",
    "kernel_description",
    "kernel_metrics_document",
    "kernel_stats",
    "note_plan_selection",
    "refresh_from_environment",
    "reset_kernel_stats",
    "shapley_coefficient_cached",
    "shapley_weights",
    "tier_for_sizes",
    "use_kernel",
]

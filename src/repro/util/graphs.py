"""A minimal undirected-graph toolkit.

The library needs exactly three graph operations — neighbor queries,
connected components, and reachability under vertex deletion — for Gaifman
graphs (:mod:`repro.core.gaifman`) and non-hierarchical-path detection
(:mod:`repro.core.paths`).  A tiny adjacency-set implementation keeps the
reproduction self-contained and makes those algorithms easy to audit.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator

Vertex = Hashable


class UndirectedGraph:
    """A simple undirected graph over hashable vertices.

    Self-loops are ignored (an edge ``(v, v)`` only ensures ``v`` exists);
    parallel edges collapse.  Iteration order over vertices follows
    insertion order, which keeps downstream algorithms deterministic.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._adjacency: dict[Vertex, set[Vertex]] = {}
        for vertex in vertices:
            self.add_vertex(vertex)
        for u, v in edges:
            self.add_edge(u, v)

    def add_vertex(self, vertex: Vertex) -> None:
        self._adjacency.setdefault(vertex, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        self.add_vertex(u)
        self.add_vertex(v)
        if u != v:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)

    @property
    def vertices(self) -> list[Vertex]:
        return list(self._adjacency)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        """Each undirected edge exactly once (in insertion-discovery order)."""
        seen: set[frozenset] = set()
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def neighbors(self, vertex: Vertex) -> set[Vertex]:
        return set(self._adjacency[vertex])

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def connected_components(self) -> list[set[Vertex]]:
        """Connected components in deterministic (first-seen) order."""
        remaining = dict.fromkeys(self._adjacency)
        components: list[set[Vertex]] = []
        while remaining:
            start = next(iter(remaining))
            component = self._bfs_component(start)
            for vertex in component:
                remaining.pop(vertex, None)
            components.append(component)
        return components

    def _bfs_component(self, start: Vertex) -> set[Vertex]:
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen

    def has_path(
        self,
        source: Vertex,
        target: Vertex,
        forbidden: Iterable[Vertex] = (),
    ) -> bool:
        """Is ``target`` reachable from ``source`` avoiding ``forbidden``?

        The endpoints themselves are never treated as forbidden: the paper's
        non-hierarchical-path test removes the *other* variables of the two
        inducing atoms but keeps ``x`` and ``y``.
        """
        if source not in self._adjacency or target not in self._adjacency:
            return False
        blocked = set(forbidden) - {source, target}
        if source in blocked or target in blocked:
            return False
        if source == target:
            return True
        seen = {source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor in blocked or neighbor in seen:
                    continue
                if neighbor == target:
                    return True
                seen.add(neighbor)
                queue.append(neighbor)
        return False

    def subgraph_without(self, removed: Iterable[Vertex]) -> "UndirectedGraph":
        """A copy of the graph with ``removed`` vertices (and their edges) deleted."""
        removed_set = set(removed)
        result = UndirectedGraph()
        for vertex in self._adjacency:
            if vertex not in removed_set:
                result.add_vertex(vertex)
        for u, v in self.edges():
            if u not in removed_set and v not in removed_set:
                result.add_edge(u, v)
        return result

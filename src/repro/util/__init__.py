"""Small self-contained utilities shared across the library.

The utilities are deliberately dependency-free: exact combinatorics over
Python integers / :class:`fractions.Fraction` and a tiny undirected-graph
toolkit sufficient for Gaifman graphs and exogenous atom graphs.
"""

from repro.util.combinatorics import (
    binomial,
    binomial_vector,
    convolve,
    convolve_many,
    falling_factorial,
    shapley_coefficient,
    subtract_vectors,
)
from repro.util.graphs import UndirectedGraph

__all__ = [
    "UndirectedGraph",
    "binomial",
    "binomial_vector",
    "convolve",
    "convolve_many",
    "falling_factorial",
    "shapley_coefficient",
    "subtract_vectors",
]

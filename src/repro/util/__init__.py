"""Small self-contained utilities shared across the library.

The utilities are deliberately dependency-free: exact combinatorics over
Python integers / :class:`fractions.Fraction` (now backed by the tiered
exact-integer kernels of :mod:`repro.util.kernels` — ``gmpy2`` is
optional, never required), and a tiny undirected-graph toolkit
sufficient for Gaifman graphs and exogenous atom graphs.
"""

from repro.util.combinatorics import (
    binomial,
    binomial_vector,
    convolve,
    convolve_many,
    falling_factorial,
    shapley_coefficient,
    subtract_vectors,
)
from repro.util.graphs import UndirectedGraph
from repro.util.kernels import (
    ShapleyAccumulator,
    active_kernel_name,
    kernel_stats,
    use_kernel,
)

__all__ = [
    "ShapleyAccumulator",
    "UndirectedGraph",
    "active_kernel_name",
    "binomial",
    "binomial_vector",
    "convolve",
    "convolve_many",
    "falling_factorial",
    "kernel_stats",
    "shapley_coefficient",
    "subtract_vectors",
    "use_kernel",
]

"""The causal effect (Salimi et al., discussed in the paper's intro).

Endogenous facts are kept independently with probability 1/2; the causal
effect of ``f`` is

    ``CE(D, q, f) = E[q | f present] - E[q | f absent]``.

This is exactly a pair of tuple-independent-database probabilities, so
the library computes it through its own probabilistic engine: the lifted
algorithm when the query is hierarchical (polynomial time — a nice
corollary of the Section 4.3 machinery), possible-world enumeration
otherwise.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.database import Database
from repro.core.errors import NotHierarchicalError, SelfJoinError
from repro.core.facts import Fact
from repro.core.query import BooleanQuery, ConjunctiveQuery
from repro.probabilistic.lifted import query_probability_lifted
from repro.probabilistic.tid import TupleIndependentDatabase
from repro.probabilistic.worlds import query_probability_by_worlds


def _tid_with_target_fixed(
    database: Database, target: Fact, present: bool
) -> TupleIndependentDatabase:
    tid = TupleIndependentDatabase()
    for item in database.exogenous:
        tid.add_deterministic(item)
    for item in database.endogenous:
        if item == target:
            if present:
                tid.add_deterministic(item)
            # absent: simply leave the fact out
        else:
            tid.add(item, Fraction(1, 2))
    return tid


def _probability(tid: TupleIndependentDatabase, query: BooleanQuery) -> Fraction:
    if isinstance(query, ConjunctiveQuery):
        try:
            return query_probability_lifted(tid, query)
        except (NotHierarchicalError, SelfJoinError):
            pass
    return query_probability_by_worlds(tid, query)


def causal_effect(
    database: Database, query: BooleanQuery, target: Fact
) -> Fraction:
    """``E[q | f in] - E[q | f out]`` under independent 1/2 retention."""
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    present = _probability(_tid_with_target_fixed(database, target, True), query)
    absent = _probability(_tid_with_target_fixed(database, target, False), query)
    return present - absent


def all_causal_effects(
    database: Database, query: BooleanQuery
) -> dict[Fact, Fraction]:
    """Causal effect of every endogenous fact."""
    return {
        f: causal_effect(database, query, f)
        for f in sorted(database.endogenous, key=repr)
    }

"""Causal responsibility (Meliou et al., discussed in the paper's intro).

The *responsibility* of a fact ``f`` is ``1 / (1 + k)`` where ``k`` is the
size of a smallest *contingency set* ``Γ ⊆ Dn \\ {f}`` whose removal makes
``f`` counterfactual: ``q(D \\ Γ) ≠ q(D \\ Γ \\ {f})``.  Facts that are
never counterfactual get responsibility 0.

The paper contrasts this measure with the Shapley value (Section 1); the
library implements it so the two can be compared on the same databases
(see ``benchmarks/bench_attribution.py``).  For non-monotone queries the
counterfactual condition is taken in both directions, matching the
"actual cause" reading used in Section 5's relevance discussion:
a fact is an actual cause iff its responsibility is positive iff it is
relevant in the sense of Definition 5.2 (witnessed by sets of the form
``E = Dn \\ Γ \\ {f}``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction

from repro.core.database import Database
from repro.core.evaluation import holds
from repro.core.facts import Fact
from repro.core.query import BooleanQuery

MAX_CONTINGENCY_FACTS = 24


@dataclass(frozen=True)
class ResponsibilityResult:
    """Responsibility with its witnessing minimal contingency set."""

    responsibility: Fraction
    contingency: frozenset[Fact] | None

    @property
    def is_cause(self) -> bool:
        return self.responsibility > 0


def minimal_contingency_set(
    database: Database, query: BooleanQuery, target: Fact
) -> frozenset[Fact] | None:
    """A smallest ``Γ`` making ``target`` counterfactual, or None.

    Searches contingency sets in increasing size (so the first hit is
    minimum); exponential in ``|Dn|`` in the worst case, which matches
    the NP-hardness of responsibility for the hard queries.
    """
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    others = sorted(database.endogenous - {target}, key=repr)
    if len(others) > MAX_CONTINGENCY_FACTS:
        raise ValueError(
            f"contingency search over {len(others)} facts would enumerate"
            f" 2^{len(others)} subsets"
        )
    exogenous = list(database.exogenous)
    for size in range(len(others) + 1):
        for gamma in itertools.combinations(others, size):
            removed = set(gamma)
            kept = [item for item in others if item not in removed]
            with_target = holds(query, exogenous + kept + [target])
            without_target = holds(query, exogenous + kept)
            if with_target != without_target:
                return frozenset(gamma)
    return None


def responsibility(
    database: Database, query: BooleanQuery, target: Fact
) -> ResponsibilityResult:
    """Causal responsibility ``1 / (1 + |Γ_min|)`` of ``target`` for ``query``."""
    gamma = minimal_contingency_set(database, query, target)
    if gamma is None:
        return ResponsibilityResult(Fraction(0), None)
    return ResponsibilityResult(Fraction(1, 1 + len(gamma)), gamma)


def all_responsibilities(
    database: Database, query: BooleanQuery
) -> dict[Fact, ResponsibilityResult]:
    """Responsibility of every endogenous fact."""
    return {
        f: responsibility(database, query, f)
        for f in sorted(database.endogenous, key=repr)
    }

"""Alternative fact-attribution measures the paper compares against.

Section 1 of the paper positions the Shapley value against two earlier
measures: causal *responsibility* (Meliou et al.) and the *causal effect*
(Salimi et al.).  Implementing them on the same substrate lets the
benchmarks compare all three rankings on identical databases, and exposes
two cross-checks the test suite exploits:

* a fact has positive responsibility iff it is relevant (Definition 5.2);
* the causal effect equals the Banzhaf value of the query game.
"""

from repro.attribution.causal_effect import all_causal_effects, causal_effect
from repro.attribution.responsibility import (
    ResponsibilityResult,
    all_responsibilities,
    minimal_contingency_set,
    responsibility,
)

__all__ = [
    "ResponsibilityResult",
    "all_causal_effects",
    "all_responsibilities",
    "causal_effect",
    "minimal_contingency_set",
    "responsibility",
]

"""Model counting for queries (the Section 6 connection).

The paper's concluding remarks link the (open) treatment of *endogenous
relations* to model counting for self-join-free CQs, resolved by
Amarilli & Kimelfeld: counting the subsets of the database that satisfy
a query.  The CntSat machinery computes exactly this as a by-product —
the count vector summed over all sizes — so the library exposes it:

    ``model_count(D, q) = #{E ⊆ Dn : Dx ∪ E ⊨ q}``

polynomial for hierarchical self-join-free CQ¬s, with a brute-force
fallback and a uniform-subset satisfaction probability convenience.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.database import Database
from repro.core.errors import IntractableQueryError, NotHierarchicalError, SelfJoinError
from repro.core.query import BooleanQuery, ConjunctiveQuery
from repro.shapley.brute_force import MAX_BRUTE_FORCE_PLAYERS, satisfying_subset_counts
from repro.shapley.cntsat import count_satisfying_subsets


def model_count(
    database: Database,
    query: BooleanQuery,
    allow_brute_force: bool = True,
) -> int:
    """Number of endogenous subsets satisfying the query (with ``Dx``)."""
    if isinstance(query, ConjunctiveQuery):
        try:
            return sum(count_satisfying_subsets(database, query))
        except (NotHierarchicalError, SelfJoinError):
            pass
    size = len(database.endogenous)
    if allow_brute_force and size <= MAX_BRUTE_FORCE_PLAYERS:
        return sum(satisfying_subset_counts(database, query))
    raise IntractableQueryError(
        f"model counting outside the hierarchical class with {size}"
        " endogenous facts is "
        + ("disabled" if not allow_brute_force else "too large for enumeration")
    )


def satisfaction_probability(
    database: Database,
    query: BooleanQuery,
    allow_brute_force: bool = True,
) -> Fraction:
    """Probability that a uniform random endogenous subset satisfies ``q``.

    Equals the tuple-independent probability at ``p = 1/2`` for every
    endogenous fact — the semantics under which the causal effect is
    defined — and therefore cross-checks the lifted engine.
    """
    m = len(database.endogenous)
    return Fraction(model_count(database, query, allow_brute_force), 2**m)

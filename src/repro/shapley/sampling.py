"""The engine-grade sampler behind the ``sampled`` method (Section 5).

This module turns the seed estimators (:mod:`repro.shapley.approximate`,
:mod:`repro.shapley.stratified`) into something a plan/execute engine
can schedule, shard, and *resume*:

* **Shared permutation sweeps** — as in
  :func:`repro.shapley.approximate.approximate_shapley_all`, one
  permutation of all players is swept once, and the satisfaction flip at
  position ``i`` is a marginal-contribution sample for the fact at that
  position: one permutation buys one sample for *every* fact.

* **Antithetic rounds** — each round pairs a forward sweep with the
  sweep of the *reversed* permutation.  Reversal mirrors the coalition
  sizes (position ``k`` becomes ``m - 1 - k``), so the pair covers the
  size strata the way :mod:`repro.shapley.stratified` allocates budget
  per size, and the two sweeps' errors are negatively correlated on
  monotone-ish queries — variance reduction at no guarantee cost: the
  round mean still lies in ``[-1, 1]``, so the Hoeffding bound applies
  *round-wise* and :func:`rounds_for_contract` is exactly the seed
  sample count.

* **Deterministic, order-independent rounds** — round ``i`` draws its
  permutation from ``sha256(seed, i)``, so any executor (serial, or a
  sharded backend splitting the round range across worker processes)
  produces bit-identical integer totals, and a later request can run
  rounds ``n .. n'`` and merge them with a stored prefix — the anytime
  refinement the daemon's ``refine`` operation exposes.

* **Stratified rounds** — the standalone allocator of
  :mod:`repro.shapley.stratified` spends equal budget per coalition
  size; folded into the round structure, ``strata=s`` sweeps ``s``
  evenly-spaced *rotations* of each round's permutation (each rotation
  shifts every player's position by ``m/s``, visiting ``s`` spread-out
  coalition sizes per player per round) plus their reversals — ``2 s``
  sweeps per round.  The round mean still lies in ``[-1, 1]`` and
  rounds stay independent, so the Hoeffding arithmetic below is
  *unchanged*: stratification only ever lowers the per-round variance
  (it cannot widen the guaranteed bound), exactly the allocator's
  argument.  ``strata=1`` is bit-identical to the un-stratified
  sampler.

* **Resumable state** — :class:`SampleState` is the whole estimator
  state: the stream seed, how many rounds are folded in, the stratum
  count, the integer marginal totals per fact, and the cumulative
  evaluation count.  It is persisted by the engine's result store under
  a policy-independent key, so *any* accuracy contract over the same
  request continues one stream.

The per-fact estimate after ``n`` rounds is ``totals[f] / (2 s n)``
(``2 s`` sweeps per round), with the additive guarantee
``epsilon = sqrt(2 ln(2 / delta) / n)`` per fact.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.core.database import Database
from repro.core.evaluation import holds
from repro.core.facts import Fact
from repro.core.query import BooleanQuery
from repro.obs import tracing as _tracing
from repro.shapley.approximate import hoeffding_sample_count


@dataclass(frozen=True)
class SampleState:
    """Everything needed to resume a sampled request where it stopped.

    ``totals`` maps each player to the integer sum of its marginal
    contributions over all ``2 * strata * rounds`` sweeps of rounds
    ``0 .. rounds - 1`` of the stream named by ``seed``; ``evaluations``
    counts the query evaluations spent producing them (cumulative across
    resumptions).  States are value objects: executors return fresh
    ones, they are never mutated in place.
    """

    seed: int
    rounds: int
    totals: Mapping[Fact, int]
    evaluations: int
    strata: int = 1

    def value_of(self, player: Fact) -> Fraction:
        """The running estimate for one player: ``total / (2 s rounds)``."""
        return Fraction(self.totals.get(player, 0), 2 * self.strata * self.rounds)

    def compatible_with(
        self, seed: int, players: Sequence[Fact], strata: int = 1
    ) -> bool:
        """Can this state extend the stream ``seed`` over ``players``?

        A stored state is only resumable when it was drawn from the
        same stream with the same stratum count *and* covers exactly the
        same player set — anything else (a corrupted entry, a key
        collision across refactors) must restart rather than silently
        merge incompatible totals.
        """
        return (
            self.seed == seed
            and self.strata == strata
            and set(self.totals) == set(players)
        )


def rounds_for_contract(epsilon: float, delta: float) -> int:
    """Antithetic rounds sufficient for an additive ``(epsilon, delta)``.

    Round means lie in ``[-1, 1]`` and rounds are independent, so the
    Hoeffding count of the seed estimator applies unchanged with
    "samples" read as "rounds".
    """
    return hoeffding_sample_count(epsilon, delta)


def achieved_epsilon(rounds: int, delta: float) -> float:
    """The additive bound ``rounds`` completed rounds actually deliver.

    Inverts the Hoeffding count: ``epsilon = sqrt(2 ln(2/delta) / n)``.
    May exceed 1 for very small ``n`` — callers clamp where a bound in
    ``(0, 1)`` is required (e.g. when re-entering it as a contract).
    """
    if rounds < 1:
        raise ValueError("achieved_epsilon needs at least one round")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    return math.sqrt(2.0 * math.log(2.0 / delta) / rounds)


def sample_seed(key: tuple) -> int:
    """A deterministic stream seed derived from a request key.

    Hashing the canonical request key (rather than drawing entropy)
    makes the permutation stream a pure function of the request: every
    process, worker, and session that plans the same request extends
    the *same* stream, which is what lets stored states resume across
    daemon restarts and database deltas.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def round_rng(seed: int, index: int) -> random.Random:
    """The RNG of round ``index`` of stream ``seed``.

    Each round gets an independent generator keyed by ``(seed, index)``
    so rounds can run in any order, on any executor, in any process,
    and still shuffle identically.
    """
    digest = hashlib.sha256(f"{seed}:{index}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:16], "big"))


def round_sweeps(players: Sequence[Fact], rng: random.Random, strata: int) -> list:
    """The sweep orders of one round: rotations of one shuffle, reversed.

    One shuffled permutation, rotated to ``strata`` evenly-spaced
    offsets (each rotation shifts every player's coalition size by
    ``m/strata`` — the stratified allocator's per-size budget, realized
    as permutation sweeps), each paired with its reversal for the
    antithetic mirror.  ``strata=1`` is exactly the historical
    forward/reverse pair.
    """
    permutation = list(players)
    rng.shuffle(permutation)
    size = len(permutation)
    sweeps = []
    # Exactly ``strata`` rotations, always: the estimate's divisor is
    # ``2 * strata`` sweeps per round, so the sweep count may never
    # shrink (with more strata than players some offsets repeat, which
    # is still an unbiased — merely redundant — sweep).
    for stratum in range(strata):
        offset = stratum * size // strata
        rotated = permutation[offset:] + permutation[:offset]
        sweeps.append(rotated)
        sweeps.append(rotated[::-1])
    return sweeps


def run_rounds(
    database: Database,
    query: BooleanQuery,
    seed: int,
    start: int,
    count: int,
    strata: int = 1,
) -> tuple[dict[Fact, int], int]:
    """Run antithetic rounds ``start .. start + count - 1`` of a stream.

    Returns the integer marginal totals contributed by exactly these
    rounds (``2 * strata`` sweeps each — see :func:`round_sweeps`) and
    the number of query evaluations spent.  Totals are
    order-independent integer sums, so disjoint round ranges — run
    serially, in worker processes, or in a later session — merge by
    plain addition.
    """
    if strata < 1:
        raise ValueError(f"strata must be positive, got {strata}")
    if _tracing.ACTIVE is not None:
        with _tracing.ACTIVE.span(
            "sampler.round", start=start, count=count, strata=strata
        ) as span:
            totals, evaluations = _run_rounds(
                database, query, seed, start, count, strata
            )
            span.set("evaluations", evaluations)
            return totals, evaluations
    return _run_rounds(database, query, seed, start, count, strata)


def _run_rounds(
    database: Database,
    query: BooleanQuery,
    seed: int,
    start: int,
    count: int,
    strata: int,
) -> tuple[dict[Fact, int], int]:
    players = sorted(database.endogenous, key=repr)
    totals: dict[Fact, int] = {player: 0 for player in players}
    if count <= 0 or not players:
        return totals, 0
    exogenous = list(database.exogenous)
    base = 1 if holds(query, exogenous) else 0
    full = 1 if holds(query, exogenous + players) else 0
    evaluations = 2
    for index in range(start, start + count):
        rng = round_rng(seed, index)
        for sweep in round_sweeps(players, rng, strata):
            previous = base
            prefix = list(exogenous)
            last = len(sweep) - 1
            for position, player in enumerate(sweep):
                prefix.append(player)
                if position == last:
                    current = full
                else:
                    current = 1 if holds(query, prefix) else 0
                    evaluations += 1
                totals[player] += current - previous
                previous = current
    return totals, evaluations


def merge_totals(
    base: Mapping[Fact, int], *others: Mapping[Fact, int]
) -> dict[Fact, int]:
    """Fold disjoint round ranges' totals together (plain integer sums)."""
    merged = dict(base)
    for totals in others:
        for player, value in totals.items():
            merged[player] = merged.get(player, 0) + value
    return merged


def extend_state(
    state: SampleState | None,
    seed: int,
    new_totals: Mapping[Fact, int],
    new_rounds: int,
    new_evaluations: int,
    strata: int = 1,
) -> SampleState:
    """The state after appending ``new_rounds`` fresh rounds to a prefix."""
    if state is None:
        return SampleState(
            seed, new_rounds, dict(new_totals), new_evaluations, strata
        )
    return SampleState(
        seed,
        state.rounds + new_rounds,
        merge_totals(state.totals, new_totals),
        state.evaluations + new_evaluations,
        state.strata,
    )


__all__ = [
    "SampleState",
    "achieved_epsilon",
    "extend_state",
    "merge_totals",
    "round_rng",
    "round_sweeps",
    "rounds_for_contract",
    "run_rounds",
    "sample_seed",
]

"""Brute-force Shapley values for Boolean queries.

Works for **any** Boolean query (CQ¬, UCQ¬, self-joins, anything with a
``holds`` semantics) by instantiating the query game of Section 2:

* players  — the endogenous facts ``Dn``;
* value    — ``v(E) = q(Dx ∪ E) - q(Dx)``.

Complexity is exponential in ``|Dn|``; this module is the ground-truth
oracle against which the polynomial algorithms (CntSat, ExoShap) and the
sampling estimator are validated.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Callable

from repro.core.database import Database
from repro.core.errors import IntractableQueryError
from repro.core.evaluation import holds
from repro.core.facts import Fact
from repro.core.query import BooleanQuery
from repro.util.kernels import ShapleyAccumulator

# Enumerating 2^|Dn| subsets beyond this size is a bug, not a computation.
MAX_BRUTE_FORCE_PLAYERS = 24


def query_game(
    database: Database, query: BooleanQuery
) -> tuple[list[Fact], Callable[[frozenset], int]]:
    """The cooperative game (players, value function) of a query.

    The returned value function memoizes satisfaction per coalition, since
    Shapley computations revisit coalitions many times.
    """
    players = sorted(database.endogenous, key=repr)
    exogenous = list(database.exogenous)
    baseline = 1 if holds(query, exogenous) else 0
    cache: dict[frozenset, int] = {}

    def value(coalition: frozenset) -> int:
        if coalition not in cache:
            satisfied = 1 if holds(query, exogenous + list(coalition)) else 0
            cache[coalition] = satisfied - baseline
        return cache[coalition]

    return players, value


def validate_brute_force_bound(database: Database) -> int:
    """Validate ``|Dn| <= MAX_BRUTE_FORCE_PLAYERS`` once, up front.

    Enumeration must fail before any per-coalition work happens, with an
    error naming the player count; returns ``|Dn|`` on success.  The
    error is an :class:`IntractableQueryError` (which is also a
    ``ValueError`` for backwards compatibility).
    """
    size = len(database.endogenous)
    if size > MAX_BRUTE_FORCE_PLAYERS:
        raise IntractableQueryError(
            f"brute force over {size} endogenous facts would enumerate"
            f" 2^{size} coalitions (limit: {MAX_BRUTE_FORCE_PLAYERS});"
            " use the polynomial algorithms or sampling instead"
        )
    return size


def shapley_brute_force(
    database: Database, query: BooleanQuery, target: Fact
) -> Fraction:
    """Exact ``Shapley(D, q, f)`` by coalition enumeration."""
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    validate_brute_force_bound(database)
    players, value = query_game(database, query)
    others = [player for player in players if player != target]
    n = len(players)
    accumulator = ShapleyAccumulator(n)
    for size in range(n):
        for subset in itertools.combinations(others, size):
            coalition = frozenset(subset)
            marginal = value(coalition | {target}) - value(coalition)
            if marginal:
                accumulator.add(size, marginal)
    return accumulator.value()


def shapley_all_brute_force(
    database: Database, query: BooleanQuery
) -> dict[Fact, Fraction]:
    """Exact Shapley values of every endogenous fact, sharing evaluations.

    The ``MAX_BRUTE_FORCE_PLAYERS`` bound is checked once up front and
    violations raise :class:`IntractableQueryError` naming the player
    count, so oversized batch requests fail fast instead of per fact.
    """
    validate_brute_force_bound(database)
    players, value = query_game(database, query)
    n = len(players)
    if n == 0:
        return {}
    accumulators = {player: ShapleyAccumulator(n) for player in players}
    for size in range(n):
        for subset in itertools.combinations(players, size):
            coalition = frozenset(subset)
            base = value(coalition)
            for player in players:
                if player in coalition:
                    continue
                marginal = value(coalition | {player}) - base
                if marginal:
                    accumulators[player].add(size, marginal)
    return {player: accumulators[player].value() for player in players}


def satisfying_subset_counts(
    database: Database, query: BooleanQuery
) -> list[int]:
    """Brute-force ``|Sat(D, q, k)|`` for every ``k`` (oracle for CntSat tests)."""
    validate_brute_force_bound(database)
    players = sorted(database.endogenous, key=repr)
    exogenous = list(database.exogenous)
    counts = [0] * (len(players) + 1)
    for size in range(len(players) + 1):
        for subset in itertools.combinations(players, size):
            if holds(query, exogenous + list(subset)):
                counts[size] += 1
    return counts

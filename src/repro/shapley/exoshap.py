"""ExoShap (Algorithm 1): Shapley values with exogenous relations.

For a self-join-free CQ¬ without a *non-hierarchical path* w.r.t. the set
``X`` of exogenous relations, Theorem 4.3 gives a polynomial-time
algorithm.  The algorithm rewrites the instance in three steps, each
preserving every Shapley value, until the query is hierarchical:

1. **Complement** (Lemma C.3): each negated exogenous atom ``¬R(t)`` is
   replaced by a positive atom over the complement relation ``R̄`` taken
   over the active domain.
2. **Join** (Lemma 4.6): each connected component of the exogenous atom
   graph ``gx(q)`` is collapsed into a single exogenous atom whose relation
   materializes the join of the component's relations.
3. **Pad** (Lemma 4.8): exogenous variables are projected away and each
   exogenous atom is widened to the variables of a non-exogenous atom that
   covers it (Lemma 4.4), padding the relation with a Cartesian product
   over the active domain.

The resulting query is hierarchical and self-join-free, so the CntSat
pipeline finishes the job.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import AbstractSet

from repro.core.database import Database
from repro.core.errors import NotHierarchicalError, SelfJoinError
from repro.core.evaluation import answers
from repro.core.facts import Fact
from repro.core.gaifman import (
    exogenous_components,
    exogenous_variables,
    infer_exogenous_relations,
    non_exogenous_atoms,
)
from repro.core.hierarchy import is_hierarchical
from repro.core.paths import find_non_hierarchical_path
from repro.core.query import Atom, ConjunctiveQuery, Variable


@dataclass(frozen=True)
class ExoShapRewrite:
    """Result of the Algorithm 1 rewriting: equivalent hierarchical instance."""

    database: Database
    query: ConjunctiveQuery
    exogenous_relations: frozenset[str]


def _fresh_relation(base: str, taken: set[str]) -> str:
    """A relation name not colliding with existing ones."""
    candidate = base
    suffix = 1
    while candidate in taken:
        candidate = f"{base}_{suffix}"
        suffix += 1
    taken.add(candidate)
    return candidate


def _ordered_variables(atoms: tuple[Atom, ...]) -> list[Variable]:
    """Variables of ``atoms`` in first-occurrence order (deterministic heads)."""
    seen: list[Variable] = []
    for atom in atoms:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
    return seen


def rewrite_to_hierarchical(
    database: Database,
    query: ConjunctiveQuery,
    exogenous_relations: AbstractSet[str],
) -> ExoShapRewrite:
    """Apply the three Shapley-preserving steps of Algorithm 1.

    Raises :class:`NotHierarchicalError` when the query has a
    non-hierarchical path w.r.t. ``X`` (the FP^#P-hard side of
    Theorem 4.3), and :class:`SelfJoinError` for self-joins.
    """
    query = query.as_boolean()
    if not query.is_self_join_free:
        raise SelfJoinError(f"ExoShap requires a self-join-free query, got {query!r}")
    path = find_non_hierarchical_path(query, exogenous_relations)
    if path is not None:
        raise NotHierarchicalError(
            f"query has a non-hierarchical path w.r.t. X={sorted(exogenous_relations)}:"
            f" {path!r} (FP^#P-complete by Theorem 4.3)"
        )
    for name in exogenous_relations:
        if name in database.relation_names and not database.relation_is_exogenous(name):
            raise ValueError(
                f"relation {name} is declared exogenous but contains endogenous facts"
            )

    db = database.copy()
    taken = set(db.relation_names) | query.relation_names
    exo: set[str] = set(exogenous_relations) & query.relation_names
    domain = sorted(db.active_domain(), key=repr)

    query, exo = _complement_negated_exogenous(db, query, exo, taken, domain)
    query, exo = _join_exogenous_components(db, query, exo, taken)
    query, exo = _pad_exogenous_atoms(db, query, exo, taken, domain)

    if not is_hierarchical(query):
        raise AssertionError(
            f"ExoShap rewriting failed to produce a hierarchical query: {query!r}"
        )
    return ExoShapRewrite(db, query, frozenset(exo))


def _complement_negated_exogenous(
    db: Database,
    query: ConjunctiveQuery,
    exo: set[str],
    taken: set[str],
    domain: list,
) -> tuple[ConjunctiveQuery, set[str]]:
    """Step 1: replace each negated exogenous atom by its complement relation."""
    new_atoms: list[Atom] = []
    new_exo = set(exo)
    for atom in query.atoms:
        if atom.negated and atom.relation in exo:
            fresh = _fresh_relation(f"{atom.relation}_comp", taken)
            present = (
                {item.args for item in db.relation(atom.relation)}
                if atom.relation in db.relation_names
                else set()
            )
            for combo in product(domain, repeat=atom.arity):
                if combo not in present:
                    db.add_exogenous(Fact(fresh, combo))
            new_atoms.append(Atom(fresh, atom.terms, negated=False))
            new_exo.discard(atom.relation)
            new_exo.add(fresh)
        else:
            new_atoms.append(atom)
    return query.with_atoms(new_atoms), new_exo


def _join_exogenous_components(
    db: Database,
    query: ConjunctiveQuery,
    exo: set[str],
    taken: set[str],
) -> tuple[ConjunctiveQuery, set[str]]:
    """Step 2: collapse each connected component of gx(q) into one joined atom."""
    components = exogenous_components(query, exo)
    replaced: dict[int, Atom | None] = {}
    new_exo = set(exo)
    for component in components:
        if len(component) == 1:
            continue
        atoms = tuple(query.atoms[i] for i in component)
        head = _ordered_variables(atoms)
        fresh = _fresh_relation("_".join(atom.relation for atom in atoms), taken)
        join_query = ConjunctiveQuery(atoms, head=tuple(head), name="qC")
        for row in answers(join_query, db.facts):
            db.add_exogenous(Fact(fresh, row))
        joined_atom = Atom(fresh, tuple(head), negated=False)
        replaced[component[0]] = joined_atom
        for index in component[1:]:
            replaced[index] = None
        for atom in atoms:
            new_exo.discard(atom.relation)
        new_exo.add(fresh)
    if not replaced:
        return query, new_exo
    new_atoms: list[Atom] = []
    for index, atom in enumerate(query.atoms):
        if index in replaced:
            if replaced[index] is not None:
                new_atoms.append(replaced[index])
        else:
            new_atoms.append(atom)
    return query.with_atoms(new_atoms), new_exo


def _pad_exogenous_atoms(
    db: Database,
    query: ConjunctiveQuery,
    exo: set[str],
    taken: set[str],
    domain: list,
) -> tuple[ConjunctiveQuery, set[str]]:
    """Step 3: drop exogenous variables and widen to a covering atom's variables."""
    exo_vars = exogenous_variables(query, exo)
    non_exo_atoms = non_exogenous_atoms(query, exo)
    new_atoms: list[Atom] = []
    new_exo = set(exo)
    for atom in query.atoms:
        if atom.relation not in exo:
            new_atoms.append(atom)
            continue
        kept = [
            term
            for term in _ordered_variables((atom,))
            if term not in exo_vars
        ]
        cover = _find_cover(kept, non_exo_atoms, atom)
        cover_vars = _ordered_variables((cover,))
        missing = [var for var in cover_vars if var not in kept]
        fresh = _fresh_relation(f"{atom.relation}_pad", taken)
        positive_atom = Atom(atom.relation, atom.terms, negated=False)
        if kept:
            projection_query = ConjunctiveQuery(
                (positive_atom,), head=tuple(kept), name="proj"
            )
            projected = answers(projection_query, db.facts)
        else:
            # The atom shares no variable with the rest of the query: it is
            # a Boolean guard.  Its projection is the zero-ary relation
            # {()} when satisfiable and {} otherwise.
            from repro.core.evaluation import holds

            guard = ConjunctiveQuery((positive_atom,), name="guard")
            projected = frozenset({()}) if holds(guard, db.facts) else frozenset()
        for row in projected:
            for padding in product(domain, repeat=len(missing)):
                db.add_exogenous(Fact(fresh, row + padding))
        new_atoms.append(Atom(fresh, tuple(kept) + tuple(missing), negated=False))
        new_exo.discard(atom.relation)
        new_exo.add(fresh)
    return query.with_atoms(new_atoms), new_exo


def _find_cover(
    kept: list[Variable],
    non_exo_atoms: tuple[Atom, ...],
    atom: Atom,
) -> Atom:
    """A non-exogenous atom whose variables cover ``kept`` (Lemma 4.4)."""
    for candidate in non_exo_atoms:
        if set(kept) <= candidate.variables:
            return candidate
    raise AssertionError(
        f"no covering atom for exogenous atom {atom!r}; this contradicts"
        " Lemma 4.4 for queries without a non-hierarchical path"
    )


def exo_shapley(
    database: Database,
    query: ConjunctiveQuery,
    target: Fact,
    exogenous_relations: AbstractSet[str] | None = None,
) -> Fraction:
    """``Shapley(D, q, f)`` for a query without a non-hierarchical path.

    ``exogenous_relations`` defaults to the relations of ``q`` that contain
    only exogenous facts in ``D``.
    """
    from repro.shapley.exact import shapley_hierarchical

    if exogenous_relations is None:
        exogenous_relations = infer_exogenous_relations(query, database)
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    rewrite = rewrite_to_hierarchical(database, query, exogenous_relations)
    return shapley_hierarchical(rewrite.database, rewrite.query, target)

"""Exact Shapley values: the counts reduction and the dispatching front door.

The reduction of Livshits et al. (restated before Lemma 3.2) turns any
polynomial-time counter of satisfying ``k``-subsets into a polynomial-time
Shapley algorithm.  With ``m = |Dn|``:

.. math::

    Shapley(D, q, f) = \\sum_{k=0}^{m-1} \\frac{k!\\,(m-k-1)!}{m!}
        \\left(|Sat^{+f}(k)| - |Sat^{-f}(k)|\\right)

where ``Sat^{+f}(k)`` counts ``k``-subsets of ``Dn \\ {f}`` satisfying the
query *with* ``f`` present (``f`` moved to the exogenous side) and
``Sat^{-f}(k)`` the same *without* ``f`` (``f`` deleted).

:func:`shapley_value` dispatches on the dichotomies: CntSat for
hierarchical queries, ExoShap when exogenous relations rescue tractability
(Theorem 4.3), and bounded brute force otherwise.
"""

from __future__ import annotations

from fractions import Fraction
from typing import AbstractSet, Callable

from repro.core.classify import classify
from repro.core.database import Database
from repro.core.errors import IntractableQueryError
from repro.core.facts import Fact
from repro.core.gaifman import infer_exogenous_relations
from repro.core.hierarchy import is_hierarchical
from repro.core.paths import has_non_hierarchical_path
from repro.core.query import BooleanQuery, ConjunctiveQuery, UnionQuery
from repro.shapley.brute_force import (
    MAX_BRUTE_FORCE_PLAYERS,
    shapley_all_brute_force,
    shapley_brute_force,
)
from repro.shapley.cntsat import count_satisfying_subsets
from repro.util.kernels import ShapleyAccumulator

CountFunction = Callable[[Database, ConjunctiveQuery], list[int]]


def shapley_from_counts(
    database: Database,
    query: ConjunctiveQuery,
    target: Fact,
    counter: CountFunction = count_satisfying_subsets,
) -> Fraction:
    """Shapley value via two count-vector computations (the Lemma 3.2 route)."""
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    m = len(database.endogenous)
    with_target = database.with_fact_exogenous(target)
    without_target = database.without_fact(target)
    counts_with = counter(with_target, query)
    counts_without = counter(without_target, query)
    accumulator = ShapleyAccumulator(m)
    for k in range(m):
        difference = counts_with[k] - counts_without[k]
        if difference:
            accumulator.add(k, difference)
    return accumulator.value()


def shapley_hierarchical(
    database: Database, query: ConjunctiveQuery, target: Fact
) -> Fraction:
    """Polynomial-time Shapley for hierarchical self-join-free CQ¬ (Thm 3.1)."""
    return shapley_from_counts(database, query, target, count_satisfying_subsets)


def shapley_value(
    database: Database,
    query: BooleanQuery,
    target: Fact,
    exogenous_relations: AbstractSet[str] | None = None,
    allow_brute_force: bool = True,
) -> Fraction:
    """Exact ``Shapley(D, q, f)``, choosing the best applicable algorithm.

    Order of preference:

    1. CntSat for hierarchical self-join-free CQ¬s (Theorem 3.1);
    2. ExoShap when the exogenous relations remove every non-hierarchical
       path (Theorem 4.3);
    3. brute-force coalition enumeration (any Boolean query, including
       UCQ¬s and self-joins) when ``|Dn|`` is small enough and
       ``allow_brute_force`` is set; otherwise
       :class:`IntractableQueryError`.
    """
    if isinstance(query, UnionQuery):
        return _fallback(database, query, target, allow_brute_force,
                         reason="UCQ¬ has no exact polynomial algorithm here")
    query = query.as_boolean()
    if exogenous_relations is None:
        exogenous_relations = infer_exogenous_relations(query, database)
    if query.is_self_join_free:
        if is_hierarchical(query):
            return shapley_hierarchical(database, query, target)
        if not has_non_hierarchical_path(query, exogenous_relations):
            from repro.shapley.exoshap import exo_shapley

            return exo_shapley(database, query, target, exogenous_relations)
    verdict = classify(query, exogenous_relations)
    return _fallback(
        database, query, target, allow_brute_force,
        reason=f"query classified as {verdict.complexity.value} ({verdict.reason})",
    )


def _fallback(
    database: Database,
    query: BooleanQuery,
    target: Fact,
    allow_brute_force: bool,
    reason: str,
) -> Fraction:
    size = len(database.endogenous)
    if allow_brute_force and size <= MAX_BRUTE_FORCE_PLAYERS:
        return shapley_brute_force(database, query, target)
    raise IntractableQueryError(
        f"no polynomial exact algorithm applies ({reason}) and brute force"
        f" over {size} endogenous facts is "
        + ("disabled" if not allow_brute_force else "too large")
    )


def shapley_all_values(
    database: Database,
    query: BooleanQuery,
    exogenous_relations: AbstractSet[str] | None = None,
    *,
    policy=None,
    allow_brute_force: bool | None = None,
) -> dict[Fact, Fraction]:
    """Shapley values of every endogenous fact, exact or sampled per policy.

    Delegates to the shared-work batch engine
    (:class:`repro.engine.BatchAttributionEngine`), i.e. routes through
    the plan/execute pipeline: the planner dispatches the method and
    prunes store-satisfied work, the configured executor (serial by
    default, sharded under ``REPRO_JOBS``) runs one CntSat-style
    recursion — or one ExoShap rewrite — for all facts instead of two
    count-vector computations per fact.  ``policy`` is a
    :class:`repro.engine.policy.MethodPolicy` (or a bare method name):
    the default ``auto`` serves even non-hierarchical queries too large
    for brute force as Hoeffding-bounded estimates, while ``exact``
    fails at plan time with an :class:`IntractableQueryError` naming
    the player count.  ``allow_brute_force`` survives as the deprecated
    boolean spelling and warns once per process.
    """
    from repro.engine import default_engine

    return default_engine().shapley_all(
        database,
        query,
        exogenous_relations,
        policy=policy,
        allow_brute_force=allow_brute_force,
    )


def shapley_all_values_per_fact(
    database: Database,
    query: BooleanQuery,
    exogenous_relations: AbstractSet[str] | None = None,
    allow_brute_force: bool = True,
) -> dict[Fact, Fraction]:
    """The seed fact-at-a-time loop: one full dispatch per endogenous fact.

    Kept as the reference implementation the batch engine is validated
    and benchmarked against (``benchmarks/bench_engine.py``); prefer
    :func:`shapley_all_values` everywhere else.
    """
    if isinstance(query, ConjunctiveQuery):
        boolean = query.as_boolean()
        if exogenous_relations is None:
            exogenous_relations = infer_exogenous_relations(boolean, database)
        tractable = boolean.is_self_join_free and (
            is_hierarchical(boolean)
            or not has_non_hierarchical_path(boolean, exogenous_relations)
        )
        if tractable:
            return {
                fact: shapley_value(database, boolean, fact, exogenous_relations)
                for fact in sorted(database.endogenous, key=repr)
            }
    size = len(database.endogenous)
    if allow_brute_force and size <= MAX_BRUTE_FORCE_PLAYERS:
        return shapley_all_brute_force(database, query)
    raise IntractableQueryError(
        f"no polynomial exact algorithm applies and brute force over {size}"
        " endogenous facts is "
        + ("disabled" if not allow_brute_force else "too large")
    )

"""Shapley values of facts w.r.t. aggregate queries over CQ¬s.

The paper (remarks in Section 3, following Livshits et al.) extends the
dichotomy to summations over CQ¬s via linearity of expectation: for an
aggregate ``α = Σ_t val(t) · 1[t ∈ q(D)]`` over the answer tuples of a
(non-Boolean) CQ¬ ``q``,

    ``Shapley(D, α, f) = Σ_t val(t) · Shapley(D, q_t, f)``

where ``q_t`` is the Boolean query obtained by substituting the head
variables with the constants of ``t``.

Candidate tuples must be enumerated over the *positive part* of the query:
with negation, a tuple can be an answer under a subset ``E`` without being
an answer on the full database.

All aggregate operators are engine-backed (:mod:`repro.engine`): the
groundings ``q_t`` run as one answer batch — one *plan* since the
plan/execute split, whose independent grounding/component nodes shard
across worker processes under the engine's sharded executor — that
shares Gaifman-component bundles across answers, each grounding costs a
single shared recursion for *all* facts, and
:func:`aggregate_attribution` exposes the all-facts aggregate values
that fall out of the same pass.
"""

from __future__ import annotations

from fractions import Fraction
from typing import AbstractSet, Callable

from repro.core.database import Database
from repro.core.evaluation import answers
from repro.core.facts import Constant, Fact
from repro.core.query import ConjunctiveQuery

TupleValue = Callable[[tuple[Constant, ...]], Fraction | int]


def candidate_answers(
    database: Database, query: ConjunctiveQuery
) -> frozenset[tuple[Constant, ...]]:
    """All tuples that could be answers under *some* endogenous subset.

    Negated atoms only shrink answer sets for a fixed assignment, but a
    smaller ``E`` can enable an assignment that the full database blocks;
    the positive atoms alone determine which head tuples are ever
    reachable, so we evaluate the positive part on all facts.
    """
    if query.is_boolean:
        raise ValueError("aggregates need a query with head variables")
    positive_part = ConjunctiveQuery(
        query.positive_atoms, head=query.head, name=query.name
    )
    return answers(positive_part, database.facts)


def _weighted_answers(
    database: Database, query: ConjunctiveQuery, value_of: TupleValue
) -> list[tuple[tuple[Constant, ...], Fraction]]:
    """Candidate answers with nonzero weight, sorted by ``repr``."""
    weighted = []
    for row in sorted(candidate_answers(database, query), key=repr):
        weight = Fraction(value_of(row))
        if weight:
            weighted.append((row, weight))
    return weighted


def _attribution_from_weighted(
    database: Database,
    query: ConjunctiveQuery,
    weighted: list[tuple[tuple[Constant, ...], Fraction]],
    exogenous_relations: AbstractSet[str] | None,
) -> dict[Fact, Fraction]:
    """Linearity over precomputed ``(answer, weight)`` pairs."""
    from repro.engine import default_engine

    totals = {item: Fraction(0) for item in sorted(database.endogenous, key=repr)}
    if not weighted:
        return totals
    batch = default_engine().batch_answers(
        database,
        query,
        [row for row, _ in weighted],
        exogenous_relations=exogenous_relations,
    )
    weights = dict(weighted)
    for answer, result in batch.per_answer.items():
        weight = weights[answer]
        for item, value in result.shapley.items():
            totals[item] += weight * value
    return totals


def aggregate_attribution(
    database: Database,
    query: ConjunctiveQuery,
    value_of: TupleValue,
    exogenous_relations: AbstractSet[str] | None = None,
) -> dict[Fact, Fraction]:
    """Aggregate Shapley values of *every* endogenous fact in one pass.

    One engine answer batch covers all weighted candidate answers; by
    linearity each fact's aggregate value is the weighted sum of its
    per-answer values.  The mapping iterates facts sorted by ``repr``
    and contains every endogenous fact (zeros included).
    """
    weighted = _weighted_answers(database, query, value_of)
    return _attribution_from_weighted(
        database, query, weighted, exogenous_relations
    )


def shapley_aggregate(
    database: Database,
    query: ConjunctiveQuery,
    target: Fact,
    value_of: TupleValue,
    exogenous_relations: AbstractSet[str] | None = None,
) -> Fraction:
    """Shapley value of ``target`` w.r.t. ``Σ_t value_of(t)`` over answers.

    Engine-backed: one batch per grounded query ``q_t`` (shared across
    facts and across answers via the engine caches), then the weighted
    sum of ``target``'s entries.
    """
    weighted = _weighted_answers(database, query, value_of)
    if not weighted:
        return Fraction(0)
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    return _attribution_from_weighted(
        database, query, weighted, exogenous_relations
    )[target]


def shapley_count(
    database: Database,
    query: ConjunctiveQuery,
    target: Fact,
    exogenous_relations: AbstractSet[str] | None = None,
) -> Fraction:
    """Shapley value w.r.t. ``Count{t | q(t)}`` (each answer weighs 1)."""
    return shapley_aggregate(
        database, query, target, lambda row: 1, exogenous_relations
    )


def shapley_sum(
    database: Database,
    query: ConjunctiveQuery,
    target: Fact,
    value_index: int,
    exogenous_relations: AbstractSet[str] | None = None,
) -> Fraction:
    """Shapley value w.r.t. ``Sum{t[value_index] | q(t)}``.

    ``value_index`` selects the numeric head position to sum, e.g. the
    profit attribute in the paper's export example.
    """
    if not query.head:
        raise ValueError("shapley_sum needs a query with head variables")
    if not 0 <= value_index < len(query.head):
        raise ValueError(
            f"value_index {value_index} out of range for head of size {len(query.head)}"
        )

    def value_of(row: tuple[Constant, ...]) -> Fraction:
        return Fraction(row[value_index])

    return shapley_aggregate(database, query, target, value_of, exogenous_relations)

"""Answer-level attribution: Shapley values for a specific answer tuple.

For a non-Boolean query, "why is ``t`` an answer?" is the Boolean
question ``q_t`` obtained by grounding the head at ``t`` (Livshits et
al.'s view, restated in Section 2 of the paper).  These helpers ground
the query and delegate to the shared-work batch engine
(:mod:`repro.engine`), so every tractability result transfers verbatim
*and* one engine batch serves all facts of an answer: each grounding
``q_t`` costs one CntSat-style recursion (or one ExoShap rewrite)
instead of two per fact, and the groundings of one query share
Gaifman-component bundles through the engine's cross-grounding pool.
Since the plan/execute split the whole answer set is one *plan* —
grounding tasks over deduplicated component nodes — so the engine's
executor backend applies transparently here: with a sharded backend
(``--jobs``/``REPRO_JOBS``) independent groundings and components run
across worker processes with bit-identical results.

Orderings are deterministic and documented: every mapping returned here
iterates facts sorted by ``repr`` (the engine's canonical order), and
per-answer mappings iterate answers sorted by ``repr``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import AbstractSet, Iterable

from repro.core.database import Database
from repro.core.facts import Constant, Fact
from repro.core.query import ConjunctiveQuery


def head_assignment(
    query: ConjunctiveQuery, answer: tuple[Constant, ...]
) -> dict | None:
    """The variable assignment grounding ``query``'s head at ``answer``.

    Returns None when the tuple conflicts with a *repeated* head variable
    (e.g. head ``(x, x)`` with answer ``(a, b)``, ``a != b``): such a
    tuple can never be an answer, so the grounded query is identically
    false and every fact's attribution vanishes.
    """
    if query.is_boolean:
        raise ValueError("the query must have head variables")
    if len(answer) != len(query.head):
        raise ValueError(
            f"answer arity {len(answer)} does not match head arity {len(query.head)}"
        )
    assignment: dict = {}
    for var, value in zip(query.head, answer):
        if assignment.setdefault(var, value) != value:
            return None
    return assignment


def ground_at_answer(
    query: ConjunctiveQuery, answer: tuple[Constant, ...]
) -> ConjunctiveQuery:
    """The Boolean query asking whether ``answer`` is in the result.

    Raises :class:`ValueError` when ``answer`` assigns conflicting
    constants to a repeated head variable — such a tuple is never an
    answer and has no meaningful grounding.  (The seed version silently
    kept the *last* constant, conflating ``q@(a,b)`` with ``q@(b,b)``.)
    """
    assignment = head_assignment(query, answer)
    if assignment is None:
        raise ValueError(
            f"answer {answer!r} assigns conflicting constants to a repeated"
            f" head variable of {query!r}"
        )
    return ConjunctiveQuery(
        tuple(atom.substitute(assignment) for atom in query.atoms),
        name=f"{query.name}@{','.join(map(str, answer))}",
    )


def shapley_for_answer(
    database: Database,
    query: ConjunctiveQuery,
    answer: tuple[Constant, ...],
    target: Fact,
    exogenous_relations: AbstractSet[str] | None = None,
) -> Fraction:
    """``Shapley(D, q_t, f)``: the contribution of ``f`` to answer ``t``.

    Engine-backed: the batch for ``q_t`` is computed (or served from the
    engine's caches) once, and this returns the single requested entry —
    asking about several facts of the same answer costs one recursion.
    """
    from repro.engine import default_engine

    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    if head_assignment(query, answer) is None:
        return Fraction(0)
    result = default_engine().batch(
        database,
        ground_at_answer(query, answer),
        exogenous_relations=exogenous_relations,
        grounding=tuple(answer),
    )
    return result.shapley[target]


def answer_attribution(
    database: Database,
    query: ConjunctiveQuery,
    answer: tuple[Constant, ...],
    exogenous_relations: AbstractSet[str] | None = None,
) -> dict[Fact, Fraction]:
    """Shapley values of every endogenous fact for one answer tuple.

    One engine batch for the grounding ``q_t`` serves all facts; the
    returned mapping iterates facts sorted by ``repr``.
    """
    from repro.engine import default_engine

    if head_assignment(query, answer) is None:
        return {
            item: Fraction(0) for item in sorted(database.endogenous, key=repr)
        }
    result = default_engine().batch(
        database,
        ground_at_answer(query, answer),
        exogenous_relations=exogenous_relations,
        grounding=tuple(answer),
    )
    return dict(result.shapley)


def answers_attribution(
    database: Database,
    query: ConjunctiveQuery,
    answers: Iterable[tuple[Constant, ...]] | None = None,
    exogenous_relations: AbstractSet[str] | None = None,
) -> dict[tuple[Constant, ...], dict[Fact, Fraction]]:
    """Shapley values of every fact for every answer, sharing work.

    ``answers`` defaults to all candidate answers (tuples reachable under
    some endogenous subset).  All groundings run in one engine answer
    batch, so components untouched by the head constants are computed
    once and reused across answers.  Answers iterate sorted by ``repr``;
    each inner mapping iterates facts sorted by ``repr``.
    """
    from repro.engine import default_engine

    batch = default_engine().batch_answers(
        database, query, answers, exogenous_relations=exogenous_relations
    )
    return {
        answer: dict(result.shapley)
        for answer, result in batch.per_answer.items()
    }


__all__ = [
    "answer_attribution",
    "answers_attribution",
    "ground_at_answer",
    "head_assignment",
    "shapley_for_answer",
]

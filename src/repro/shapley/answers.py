"""Answer-level attribution: Shapley values for a specific answer tuple.

For a non-Boolean query, "why is ``t`` an answer?" is the Boolean
question ``q_t`` obtained by grounding the head at ``t`` (Livshits et
al.'s view, restated in Section 2 of the paper).  These helpers ground
the query and delegate to the Boolean machinery, so every tractability
result transfers verbatim.
"""

from __future__ import annotations

from fractions import Fraction
from typing import AbstractSet

from repro.core.database import Database
from repro.core.facts import Constant, Fact
from repro.core.query import ConjunctiveQuery
from repro.shapley.exact import shapley_value


def ground_at_answer(
    query: ConjunctiveQuery, answer: tuple[Constant, ...]
) -> ConjunctiveQuery:
    """The Boolean query asking whether ``answer`` is in the result."""
    if query.is_boolean:
        raise ValueError("the query must have head variables")
    if len(answer) != len(query.head):
        raise ValueError(
            f"answer arity {len(answer)} does not match head arity {len(query.head)}"
        )
    assignment = dict(zip(query.head, answer))
    return ConjunctiveQuery(
        tuple(atom.substitute(assignment) for atom in query.atoms),
        name=f"{query.name}@{','.join(map(str, answer))}",
    )


def shapley_for_answer(
    database: Database,
    query: ConjunctiveQuery,
    answer: tuple[Constant, ...],
    target: Fact,
    exogenous_relations: AbstractSet[str] | None = None,
) -> Fraction:
    """``Shapley(D, q_t, f)``: the contribution of ``f`` to answer ``t``."""
    return shapley_value(
        database, ground_at_answer(query, answer), target, exogenous_relations
    )


def answer_attribution(
    database: Database,
    query: ConjunctiveQuery,
    answer: tuple[Constant, ...],
    exogenous_relations: AbstractSet[str] | None = None,
) -> dict[Fact, Fraction]:
    """Shapley values of every endogenous fact for one answer tuple."""
    grounded = ground_at_answer(query, answer)
    return {
        f: shapley_value(database, grounded, f, exogenous_relations)
        for f in sorted(database.endogenous, key=repr)
    }

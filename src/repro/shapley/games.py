"""Generic cooperative games and exact Shapley / Banzhaf values.

The Shapley value (Section 2 of the paper) of player ``a`` in game
``v : P(A) → Q`` is the expected marginal contribution of ``a`` over a
uniformly random permutation of the players:

.. math::

    Shapley(A, v, a) = \\frac{1}{|A|!} \\sum_{\\sigma \\in \\Pi_A}
        (v(\\sigma_a \\cup \\{a\\}) - v(\\sigma_a))

This module implements the definition twice — by permutation enumeration
and by the equivalent subset (coalition) formula — which the test suite
cross-checks.  Everything is exact rational arithmetic.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Callable, Hashable, Iterable, Sequence

from repro.util.kernels import ShapleyAccumulator

Player = Hashable
ValueFunction = Callable[[frozenset], Fraction | int]


def shapley_by_permutations(
    players: Sequence[Player], value: ValueFunction, target: Player
) -> Fraction:
    """Shapley value straight from the permutation definition.

    Exponential in ``|players|``; intended as a ground-truth oracle for
    small games in tests.
    """
    players = list(players)
    if target not in players:
        raise ValueError(f"target {target!r} is not a player")
    total = Fraction(0)
    count = 0
    for permutation in itertools.permutations(players):
        before = frozenset(
            itertools.takewhile(lambda player: player != target, permutation)
        )
        total += Fraction(value(before | {target})) - Fraction(value(before))
        count += 1
    return total / count


def shapley_by_subsets(
    players: Sequence[Player], value: ValueFunction, target: Player
) -> Fraction:
    """Shapley value via the coalition form.

    ``Σ_S |S|!(n-|S|-1)!/n! · (v(S ∪ {a}) - v(S))`` over subsets ``S`` of
    the other players.  Still exponential, but with ``2^(n-1)`` instead of
    ``n!`` evaluations.
    """
    others = [player for player in players if player != target]
    if len(others) == len(players):
        raise ValueError(f"target {target!r} is not a player")
    n = len(players)
    accumulator = ShapleyAccumulator(n)
    for size in range(len(others) + 1):
        for subset in itertools.combinations(others, size):
            coalition = frozenset(subset)
            marginal = Fraction(value(coalition | {target})) - Fraction(value(coalition))
            if marginal:
                accumulator.add(size, marginal)
    return accumulator.value()


def shapley_all(
    players: Sequence[Player], value: ValueFunction
) -> dict[Player, Fraction]:
    """Shapley values of all players, sharing coalition evaluations.

    Evaluates ``v`` once per subset (``2^n`` evaluations) instead of once
    per (player, subset) pair.
    """
    players = list(players)
    n = len(players)
    if n == 0:
        return {}
    cache: dict[frozenset, Fraction] = {}

    def cached_value(coalition: frozenset) -> Fraction:
        if coalition not in cache:
            cache[coalition] = Fraction(value(coalition))
        return cache[coalition]

    accumulators = {player: ShapleyAccumulator(n) for player in players}
    for size in range(n):
        for subset in itertools.combinations(players, size):
            coalition = frozenset(subset)
            base = cached_value(coalition)
            for player in players:
                if player in coalition:
                    continue
                marginal = cached_value(coalition | {player}) - base
                if marginal:
                    accumulators[player].add(size, marginal)
    return {player: accumulators[player].value() for player in players}


def banzhaf_value(
    players: Sequence[Player], value: ValueFunction, target: Player
) -> Fraction:
    """The (raw) Banzhaf value: average marginal contribution over subsets.

    Not used by the paper's theorems, but a standard companion power index;
    included because the count-vector machinery computes it for free and it
    is a useful sanity cross-check (same zero set for monotone games).
    """
    others = [player for player in players if player != target]
    if len(others) == len(players):
        raise ValueError(f"target {target!r} is not a player")
    total = Fraction(0)
    for size in range(len(others) + 1):
        for subset in itertools.combinations(others, size):
            coalition = frozenset(subset)
            total += Fraction(value(coalition | {target})) - Fraction(value(coalition))
    return total / 2 ** len(others)


def efficiency_gap(
    players: Sequence[Player], value: ValueFunction, values: dict[Player, Fraction]
) -> Fraction:
    """``Σ_a Shapley(a) - (v(A) - v(∅))`` — zero iff the efficiency axiom holds."""
    grand = frozenset(players)
    total = sum(values.values(), Fraction(0))
    return total - (Fraction(value(grand)) - Fraction(value(frozenset())))


def permutation_marginals(
    players: Sequence[Player], value: ValueFunction, target: Player
) -> Iterable[Fraction]:
    """Marginal contribution of ``target`` in every permutation (test helper)."""
    for permutation in itertools.permutations(players):
        before = frozenset(
            itertools.takewhile(lambda player: player != target, permutation)
        )
        yield Fraction(value(before | {target})) - Fraction(value(before))

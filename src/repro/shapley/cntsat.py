"""CntSat: counting satisfying k-subsets for hierarchical self-join-free CQ¬s.

This implements the polynomial-time algorithm behind the positive side of
Theorem 3.1.  Given a database ``D`` and a hierarchical self-join-free CQ¬
``q``, it computes the full *count vector*

    ``c[k] = |Sat(D, q, k)| = #{E ⊆ Dn : |E| = k and Dx ∪ E ⊨ q}``

for all ``k`` at once.  The recursion follows Livshits et al.'s CntSat with
the paper's modified base case for negation (Lemma 3.2):

1. **Restriction.** Facts that cannot match their atom's pattern (constant
   mismatch, repeated-variable mismatch) are *free*: they never influence
   satisfaction and contribute a binomial factor.
2. **Independent components.** Variable-connected components of the query
   touch disjoint relations (self-join-freeness), hence disjoint fact sets;
   their count vectors combine by convolution (logical AND).
3. **Root variable.** A connected component with variables has, by
   hierarchicality, a variable ``x`` occurring in every atom.  Slicing the
   facts by their ``x``-value yields independent subproblems, of which at
   least one must be satisfied (logical OR): UNSAT vectors convolve, and
   SAT = total - UNSAT.
4. **Ground base case.** Positive endogenous facts are forced into ``E``,
   negative endogenous facts are forced out; a missing positive fact or an
   exogenous negative fact zeroes the vector.

All arithmetic is exact (Python integers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.database import Database
from repro.core.errors import NotHierarchicalError, SelfJoinError
from repro.core.facts import Constant, Fact
from repro.core.hierarchy import is_hierarchical
from repro.core.query import Atom, ConjunctiveQuery, Variable
from repro.util.combinatorics import (
    binomial_vector,
    convolve,
    convolve_many,
    subtract_vectors,
)


@dataclass(frozen=True)
class _ScopedAtom:
    """An atom together with the facts still eligible to match it."""

    atom: Atom
    exogenous: frozenset[Fact]
    endogenous: frozenset[Fact]

    @property
    def endogenous_count(self) -> int:
        return len(self.endogenous)


def count_satisfying_subsets(
    database: Database, query: ConjunctiveQuery
) -> list[int]:
    """The vector ``[|Sat(D, q, 0)|, ..., |Sat(D, q, |Dn|)|]``.

    Raises :class:`SelfJoinError` / :class:`NotHierarchicalError` outside
    the tractable class of Theorem 3.1.
    """
    query = query.as_boolean()
    if not query.is_self_join_free:
        raise SelfJoinError(
            f"CntSat requires a self-join-free query, got {query!r}"
        )
    if not is_hierarchical(query):
        raise NotHierarchicalError(
            f"CntSat requires a hierarchical query, got {query!r}"
        )
    scope = [
        _ScopedAtom(
            atom,
            frozenset(
                item for item in database.relation(atom.relation)
                if database.is_exogenous(item)
            ),
            frozenset(
                item for item in database.relation(atom.relation)
                if database.is_endogenous(item)
            ),
        )
        for atom in query.atoms
    ]
    query_relations = query.relation_names
    unused = sum(
        1 for item in database.endogenous if item.relation not in query_relations
    )
    vector = convolve(_count(scope), binomial_vector(unused))
    expected = len(database.endogenous) + 1
    assert len(vector) == expected, (len(vector), expected)
    return vector


def _count(scope: Sequence[_ScopedAtom]) -> list[int]:
    """Count vector over the endogenous facts owned by ``scope``."""
    free = 0
    restricted: list[_ScopedAtom] = []
    for scoped in scope:
        matching_exo = frozenset(
            item for item in scoped.exogenous if scoped.atom.matches(item)
        )
        matching_endo = frozenset(
            item for item in scoped.endogenous if scoped.atom.matches(item)
        )
        free += len(scoped.endogenous) - len(matching_endo)
        restricted.append(_ScopedAtom(scoped.atom, matching_exo, matching_endo))

    vectors = [
        _count_component(component) for component in _components(restricted)
    ]
    vectors.append(binomial_vector(free))
    return convolve_many(vectors)


def _components(scope: Sequence[_ScopedAtom]) -> list[list[_ScopedAtom]]:
    """Group scoped atoms into variable-connected components."""
    n = len(scope)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner: dict[Variable, int] = {}
    for index, scoped in enumerate(scope):
        for var in scoped.atom.variables:
            if var in owner:
                root_a, root_b = find(owner[var]), find(index)
                if root_a != root_b:
                    parent[root_b] = root_a
            else:
                owner[var] = index
    groups: dict[int, list[_ScopedAtom]] = {}
    for index, scoped in enumerate(scope):
        groups.setdefault(find(index), []).append(scoped)
    return list(groups.values())


def _count_component(component: list[_ScopedAtom]) -> list[int]:
    """Count vector for one variable-connected component."""
    variables = frozenset(
        var for scoped in component for var in scoped.atom.variables
    )
    if not variables:
        return _count_ground(component)

    roots = None
    for scoped in component:
        atom_vars = scoped.atom.variables
        roots = atom_vars if roots is None else roots & atom_vars
    if not roots:
        # Cannot happen for hierarchical queries; kept as a guard so that a
        # future caller skipping the up-front check still fails loudly.
        raise NotHierarchicalError(
            "connected subquery without a root variable: "
            + ", ".join(repr(scoped.atom) for scoped in component)
        )
    root = min(roots, key=lambda var: var.name)

    slices: dict[Constant, list[_ScopedAtom]] = {}
    candidates: set[Constant] = set()
    positions: dict[int, int] = {}
    for index, scoped in enumerate(component):
        positions[index] = scoped.atom.terms.index(root)
        for item in scoped.exogenous | scoped.endogenous:
            candidates.add(item.args[positions[index]])

    total_endogenous = sum(scoped.endogenous_count for scoped in component)
    unsat_vectors: list[list[int]] = []
    for value in sorted(candidates, key=repr):
        slice_scope = []
        slice_endogenous = 0
        for index, scoped in enumerate(component):
            at = positions[index]
            exo = frozenset(
                item for item in scoped.exogenous if item.args[at] == value
            )
            endo = frozenset(
                item for item in scoped.endogenous if item.args[at] == value
            )
            slice_endogenous += len(endo)
            slice_scope.append(
                _ScopedAtom(scoped.atom.substitute({root: value}), exo, endo)
            )
        sat = _count(slice_scope)
        unsat_vectors.append(
            subtract_vectors(binomial_vector(slice_endogenous), sat)
        )
    all_unsat = convolve_many(unsat_vectors)
    return subtract_vectors(binomial_vector(total_endogenous), all_unsat)


def _count_ground(component: list[_ScopedAtom]) -> list[int]:
    """Base case of Lemma 3.2: every atom in the component is ground."""
    owned = sum(scoped.endogenous_count for scoped in component)
    needed = 0
    satisfiable = True
    for scoped in component:
        ground = scoped.atom.to_fact()
        in_exogenous = ground in scoped.exogenous
        in_endogenous = ground in scoped.endogenous
        if not scoped.atom.negated:
            if in_exogenous:
                continue
            if in_endogenous:
                needed += 1
            else:
                satisfiable = False
        else:
            if in_exogenous:
                satisfiable = False
            # An endogenous fact of a ground negated atom must stay out of
            # E: it is owned but never selected.
    vector = [0] * (owned + 1)
    if satisfiable:
        vector[needed] = 1
    return vector

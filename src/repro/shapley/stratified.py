"""Stratified sampling: a lower-variance additive estimator.

The plain estimator of :mod:`repro.shapley.approximate` samples the
coalition size ``k`` uniformly and then a ``k``-subset — one stratum per
draw.  Since the Shapley value is the *average over sizes* of per-size
expected marginals,

    ``Shapley = (1/m) Σ_k E[marginal | |E| = k]``,

we can instead allocate a fixed budget to every stratum and average the
per-stratum means.  Stratification never increases variance and helps
precisely when pivotality concentrates on few coalition sizes — e.g. the
Theorem 5.1 gap family, where the single pivotal configuration lives at
``k = n``.  (It cannot repair the exponential *magnitude* of the gap —
nothing can, that is Theorem 5.1's point — but it squeezes real variance
out of moderate instances, which the E7 benchmark quantifies.)

The stratum estimate is exact (variance zero) when a stratum is
deterministic, and the Hoeffding bound applies stratum-wise, giving the
same additive guarantee from the same total budget.

The engine-grade sampler folds this allocation into its round
structure: :func:`repro.shapley.sampling.round_sweeps` realizes the
per-size budget as evenly-spaced *rotations* of each round's
permutation (``strata`` sweeps visiting spread-out coalition sizes),
which keeps rounds independent, totals mergeable, and the achieved
``epsilon`` formula unchanged — pass ``sample_strata`` to
:class:`repro.engine.core.BatchAttributionEngine` to use it.  This
module remains the standalone single-fact estimator and the E7
variance-comparison harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from repro.core.database import Database
from repro.core.evaluation import holds
from repro.core.facts import Fact
from repro.core.query import BooleanQuery


@dataclass(frozen=True)
class StratifiedEstimate:
    """Per-size stratum means and the combined Shapley estimate."""

    value: Fraction
    samples_per_stratum: int
    stratum_means: tuple[Fraction, ...]

    @property
    def total_samples(self) -> int:
        return self.samples_per_stratum * len(self.stratum_means)


def stratified_shapley_estimate(
    database: Database,
    query: BooleanQuery,
    target: Fact,
    samples_per_stratum: int,
    rng: random.Random | None = None,
) -> StratifiedEstimate:
    """Estimate ``Shapley(D, q, f)`` with equal budget per coalition size.

    For each ``k`` in ``0 .. m-1`` the estimator draws
    ``samples_per_stratum`` uniform ``k``-subsets of ``Dn \\ {f}`` and
    averages the marginal contribution of ``f``; the final value is the
    unweighted mean over strata (sizes are equiprobable under a uniform
    permutation).
    """
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    if samples_per_stratum < 1:
        raise ValueError("samples_per_stratum must be positive")
    rng = rng or random.Random()
    others = sorted(database.endogenous - {target}, key=repr)
    exogenous = list(database.exogenous)
    m = len(others) + 1

    means = []
    for size in range(m):
        total = 0
        for _ in range(samples_per_stratum):
            prefix = rng.sample(others, size) if size else []
            without = 1 if holds(query, exogenous + prefix) else 0
            with_target = 1 if holds(query, exogenous + prefix + [target]) else 0
            total += with_target - without
        means.append(Fraction(total, samples_per_stratum))
    value = sum(means, Fraction(0)) / m
    return StratifiedEstimate(value, samples_per_stratum, tuple(means))


def estimator_variance_comparison(
    database: Database,
    query: BooleanQuery,
    target: Fact,
    budget: int,
    trials: int,
    rng: random.Random | None = None,
) -> tuple[float, float]:
    """Empirical variance of the plain vs stratified estimator.

    Both estimators spend (approximately) ``budget`` query evaluations per
    trial; returns ``(plain_variance, stratified_variance)`` over
    ``trials`` repetitions — the E7 ablation's data.
    """
    from repro.shapley.approximate import approximate_shapley

    rng = rng or random.Random()
    m = len(database.endogenous)
    per_stratum = max(1, budget // m)

    def variance(samples: list[float]) -> float:
        mean = sum(samples) / len(samples)
        return sum((value - mean) ** 2 for value in samples) / len(samples)

    plain = [
        float(
            approximate_shapley(
                database, query, target, samples=budget,
                rng=random.Random(rng.random()),
            ).value
        )
        for _ in range(trials)
    ]
    stratified = [
        float(
            stratified_shapley_estimate(
                database, query, target, per_stratum,
                rng=random.Random(rng.random()),
            ).value
        )
        for _ in range(trials)
    ]
    return variance(plain), variance(stratified)

"""Monte-Carlo approximation of the Shapley value (Section 5.1).

The additive FPRAS samples random permutations of the endogenous facts and
averages the marginal contribution of the target fact.  Each sample is a
random variable in ``{-1, 0, 1}`` (with negation a fact can flip the query
both ways), so the Hoeffding bound gives

    ``n >= 2 * ln(2 / delta) / epsilon^2``

samples for an ``epsilon``-additive estimate with confidence ``1 - delta``.

The module also exposes the *gap diagnostics* of Section 5: for CQs the
nonzero Shapley value is at least the reciprocal of a polynomial (which
upgrades the additive FPRAS to a multiplicative one); Theorem 5.1 shows any
natural CQ¬ breaks this, and :func:`multiplicative_sample_lower_bound`
quantifies how many samples the additive route would need.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.core.database import Database
from repro.core.evaluation import holds
from repro.core.facts import Fact
from repro.core.query import BooleanQuery


@dataclass(frozen=True)
class ShapleyEstimate:
    """A sampled estimate with its additive guarantee."""

    value: Fraction
    samples: int
    epsilon: float
    delta: float

    def within(self, exact: Fraction) -> bool:
        """Is the exact value inside the additive ``epsilon`` window?"""
        return abs(self.value - exact) <= self.epsilon


def hoeffding_sample_count(epsilon: float, delta: float) -> int:
    """Samples sufficient for an additive (epsilon, delta) guarantee.

    Marginal contributions lie in ``[-1, 1]`` (range 2), so Hoeffding gives
    ``P(|mean - mu| >= eps) <= 2 exp(-n eps^2 / 2)``.
    """
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must lie in (0, 1)")
    return math.ceil(2.0 * math.log(2.0 / delta) / (epsilon * epsilon))


def sample_marginal_contributions(
    database: Database,
    query: BooleanQuery,
    target: Fact,
    samples: int,
    rng: random.Random | None = None,
) -> Iterable[int]:
    """Marginal contributions of ``target`` in ``samples`` random permutations.

    Each draw shuffles ``Dn`` uniformly, takes the prefix before ``target``
    as the coalition ``sigma_f``, and yields
    ``q(Dx ∪ sigma_f ∪ {f}) - q(Dx ∪ sigma_f)`` in ``{-1, 0, 1}``.
    """
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    rng = rng or random.Random()
    others = sorted(database.endogenous - {target}, key=repr)
    exogenous = list(database.exogenous)
    for _ in range(samples):
        permutation = others[:]
        rng.shuffle(permutation)
        prefix_size = rng.randint(0, len(others))
        prefix = permutation[:prefix_size]
        without = 1 if holds(query, exogenous + prefix) else 0
        with_target = 1 if holds(query, exogenous + prefix + [target]) else 0
        yield with_target - without


def approximate_shapley(
    database: Database,
    query: BooleanQuery,
    target: Fact,
    epsilon: float = 0.1,
    delta: float = 0.05,
    rng: random.Random | None = None,
    samples: int | None = None,
) -> ShapleyEstimate:
    """Additive FPRAS estimate of ``Shapley(D, q, f)``.

    ``samples`` overrides the Hoeffding-derived count when given (useful
    for convergence studies).
    """
    count = samples if samples is not None else hoeffding_sample_count(epsilon, delta)
    total = 0
    for marginal in sample_marginal_contributions(database, query, target, count, rng):
        total += marginal
    return ShapleyEstimate(Fraction(total, count), count, epsilon, delta)


def approximate_shapley_all(
    database: Database,
    query: BooleanQuery,
    epsilon: float = 0.1,
    delta: float = 0.05,
    rng: random.Random | None = None,
    samples: int | None = None,
) -> dict[Fact, ShapleyEstimate]:
    """Additive estimates for *all* endogenous facts from shared permutations.

    The fact-at-a-time estimator costs two query evaluations per sample
    per fact.  Here each sampled permutation of ``Dn`` is swept once,
    evaluating the query on its ``m + 1`` prefixes; the difference at
    position ``i`` is a valid marginal-contribution sample for the fact
    at that position — one permutation yields one sample for *every*
    fact.  Total cost per round drops from ``2m`` evaluations per fact to
    ``m + 1`` evaluations shared by all facts.

    Each fact's estimate carries the usual per-fact additive
    ``(epsilon, delta)`` guarantee; the samples of different facts are
    correlated (they come from the same permutations), which does not
    affect the per-fact Hoeffding bound.
    """
    count = samples if samples is not None else hoeffding_sample_count(epsilon, delta)
    rng = rng or random.Random()
    players = sorted(database.endogenous, key=repr)
    exogenous = list(database.exogenous)
    totals: dict[Fact, int] = {player: 0 for player in players}
    for _ in range(count):
        permutation = players[:]
        rng.shuffle(permutation)
        previous = 1 if holds(query, exogenous) else 0
        prefix: list[Fact] = []
        for player in permutation:
            prefix.append(player)
            current = 1 if holds(query, exogenous + prefix) else 0
            totals[player] += current - previous
            previous = current
    return {
        player: ShapleyEstimate(Fraction(totals[player], count), count, epsilon, delta)
        for player in players
    }


def multiplicative_sample_lower_bound(shapley_magnitude: Fraction) -> int:
    """Samples the additive estimator needs to *resolve* a value this small.

    To distinguish a Shapley value of magnitude ``s`` from zero, the
    additive error must drop below ``s``, i.e. ``epsilon < s``, requiring
    ``Omega(1 / s^2)`` samples.  On the Theorem 5.1 family ``s = 2^-Θ(n)``,
    so this is exponential — the quantitative content of "the gap property
    fails".
    """
    if shapley_magnitude <= 0:
        raise ValueError("the bound applies to nonzero magnitudes")
    return math.ceil(1 / float(shapley_magnitude) ** 2)


def gap_property_floor(database: Database) -> Fraction:
    """The 1/poly floor that the gap property would impose for positive CQs.

    For a CQ (no negation) the nonzero Shapley value is at least
    ``1 / (|Dn|! )``-ish; the usable polynomial bound from Livshits et al.
    is ``1 / |Dn|^2`` for facts participating in some minimal support.  We
    expose the weakest form sufficient for the comparison benches:
    ``1 / (|Dn| * (|Dn| + 1))``.
    """
    m = len(database.endogenous)
    if m == 0:
        raise ValueError("database has no endogenous facts")
    return Fraction(1, m * (m + 1))

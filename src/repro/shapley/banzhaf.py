"""Banzhaf values of database facts.

The (raw) Banzhaf value averages the marginal contribution over *uniform
subsets* instead of permutation prefixes:

    ``Banzhaf(D, q, f) = 2^{-(m-1)} Σ_{E ⊆ Dn∖{f}} (v(E ∪ {f}) - v(E))``.

Two facts make it worth shipping alongside the Shapley engine:

* it falls out of the same count vectors — summing ``c⁺[k] − c⁻[k]`` over
  ``k`` with uniform weight — so the Theorem 3.1 / 4.3 tractable classes
  are tractable for Banzhaf too, via the identical reductions;
* it *coincides with the causal effect* of Salimi et al. under the
  independent-1/2 retention semantics, tying the paper's intro-level
  comparison of measures into one identity the test suite verifies.
"""

from __future__ import annotations

from fractions import Fraction
from typing import AbstractSet

from repro.core.database import Database
from repro.core.errors import IntractableQueryError
from repro.core.facts import Fact
from repro.core.gaifman import infer_exogenous_relations
from repro.core.hierarchy import is_hierarchical
from repro.core.paths import has_non_hierarchical_path
from repro.core.query import BooleanQuery, ConjunctiveQuery
from repro.shapley.brute_force import MAX_BRUTE_FORCE_PLAYERS, query_game
from repro.shapley.cntsat import count_satisfying_subsets
from repro.shapley.exact import CountFunction


def banzhaf_from_counts(
    database: Database,
    query: ConjunctiveQuery,
    target: Fact,
    counter: CountFunction = count_satisfying_subsets,
) -> Fraction:
    """Banzhaf value via two count-vector computations (mirrors Shapley)."""
    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    m = len(database.endogenous)
    counts_with = counter(database.with_fact_exogenous(target), query)
    counts_without = counter(database.without_fact(target), query)
    total = sum(counts_with[k] - counts_without[k] for k in range(m))
    return Fraction(total, 2 ** (m - 1))


def banzhaf_brute_force(
    database: Database, query: BooleanQuery, target: Fact
) -> Fraction:
    """Banzhaf value by coalition enumeration (oracle for tests)."""
    import itertools

    from repro.shapley.brute_force import validate_brute_force_bound

    if not database.is_endogenous(target):
        raise ValueError(f"{target!r} is not an endogenous fact of the database")
    validate_brute_force_bound(database)
    players, value = query_game(database, query)
    others = [player for player in players if player != target]
    total = 0
    for size in range(len(others) + 1):
        for subset in itertools.combinations(others, size):
            coalition = frozenset(subset)
            total += value(coalition | {target}) - value(coalition)
    return Fraction(total, 2 ** len(others))


def banzhaf_all_brute_force(
    database: Database, query: BooleanQuery
) -> dict[Fact, Fraction]:
    """Banzhaf values of every endogenous fact, sharing coalition evaluations.

    Like :func:`repro.shapley.brute_force.shapley_all_brute_force`, the
    size bound is validated once up front (raising
    :class:`IntractableQueryError` with the player count) and every
    coalition's satisfaction is evaluated exactly once for all facts.
    """
    import itertools

    from repro.shapley.brute_force import validate_brute_force_bound

    validate_brute_force_bound(database)
    players, value = query_game(database, query)
    n = len(players)
    if n == 0:
        return {}
    totals: dict[Fact, int] = {player: 0 for player in players}
    for size in range(n):
        for subset in itertools.combinations(players, size):
            coalition = frozenset(subset)
            base = value(coalition)
            for player in players:
                if player in coalition:
                    continue
                totals[player] += value(coalition | {player}) - base
    denominator = 2 ** (n - 1)
    return {player: Fraction(totals[player], denominator) for player in players}


def banzhaf_all_values(
    database: Database,
    query: BooleanQuery,
    exogenous_relations: AbstractSet[str] | None = None,
    *,
    policy=None,
    allow_brute_force: bool | None = None,
) -> dict[Fact, Fraction]:
    """Exact Banzhaf values of every endogenous fact, via the batch engine.

    The engine derives Banzhaf and Shapley values from the same per-fact
    count vectors, so asking for both costs one shared recursion total —
    one plan/execute pass, under whichever executor backend the default
    engine is configured with.  ``policy`` follows
    :func:`repro.shapley.exact.shapley_all_values` — but note the
    ``sampled`` method estimates Shapley only, so a sampled policy here
    returns an empty mapping; ``allow_brute_force`` is the deprecated
    boolean spelling and warns once per process.
    """
    from repro.engine import default_engine

    return default_engine().banzhaf_all(
        database,
        query,
        exogenous_relations,
        policy=policy,
        allow_brute_force=allow_brute_force,
    )


def banzhaf_value(
    database: Database,
    query: BooleanQuery,
    target: Fact,
    exogenous_relations: AbstractSet[str] | None = None,
    allow_brute_force: bool = True,
) -> Fraction:
    """Exact Banzhaf value, dispatching like :func:`repro.shapley.shapley_value`."""
    if isinstance(query, ConjunctiveQuery):
        boolean = query.as_boolean()
        if exogenous_relations is None:
            exogenous_relations = infer_exogenous_relations(boolean, database)
        if boolean.is_self_join_free:
            if is_hierarchical(boolean):
                return banzhaf_from_counts(database, boolean, target)
            if not has_non_hierarchical_path(boolean, exogenous_relations):
                from repro.shapley.exoshap import rewrite_to_hierarchical

                rewrite = rewrite_to_hierarchical(
                    database, boolean, exogenous_relations
                )
                return banzhaf_from_counts(rewrite.database, rewrite.query, target)
    size = len(database.endogenous)
    if allow_brute_force and size <= MAX_BRUTE_FORCE_PLAYERS:
        return banzhaf_brute_force(database, query, target)
    raise IntractableQueryError(
        f"no polynomial Banzhaf algorithm applies and brute force over"
        f" {size} endogenous facts is "
        + ("disabled" if not allow_brute_force else "too large")
    )

"""Shapley value computation: exact (polynomial and brute force) and approximate."""

from repro.shapley.answers import (
    answer_attribution,
    answers_attribution,
    ground_at_answer,
    head_assignment,
    shapley_for_answer,
)
from repro.shapley.model_counting import model_count, satisfaction_probability
from repro.shapley.aggregates import (
    aggregate_attribution,
    candidate_answers,
    shapley_aggregate,
    shapley_count,
    shapley_sum,
)
from repro.shapley.approximate import (
    ShapleyEstimate,
    approximate_shapley,
    approximate_shapley_all,
    gap_property_floor,
    hoeffding_sample_count,
    multiplicative_sample_lower_bound,
    sample_marginal_contributions,
)
from repro.shapley.banzhaf import (
    banzhaf_all_brute_force,
    banzhaf_all_values,
    banzhaf_brute_force,
    banzhaf_from_counts,
)
from repro.shapley.banzhaf import banzhaf_value as banzhaf_fact_value
from repro.shapley.brute_force import (
    MAX_BRUTE_FORCE_PLAYERS,
    query_game,
    satisfying_subset_counts,
    shapley_all_brute_force,
    shapley_brute_force,
)
from repro.shapley.cntsat import count_satisfying_subsets
from repro.shapley.exact import (
    shapley_all_values,
    shapley_all_values_per_fact,
    shapley_from_counts,
    shapley_hierarchical,
    shapley_value,
)
from repro.shapley.exoshap import ExoShapRewrite, exo_shapley, rewrite_to_hierarchical
from repro.shapley.sampling import (
    SampleState,
    achieved_epsilon,
    extend_state,
    merge_totals,
    round_rng,
    rounds_for_contract,
    run_rounds,
    sample_seed,
)
from repro.shapley.stratified import (
    StratifiedEstimate,
    estimator_variance_comparison,
    stratified_shapley_estimate,
)
from repro.shapley.games import (
    banzhaf_value,
    efficiency_gap,
    permutation_marginals,
    shapley_all,
    shapley_by_permutations,
    shapley_by_subsets,
)

__all__ = [
    "ExoShapRewrite",
    "MAX_BRUTE_FORCE_PLAYERS",
    "SampleState",
    "ShapleyEstimate",
    "StratifiedEstimate",
    "achieved_epsilon",
    "aggregate_attribution",
    "answer_attribution",
    "answers_attribution",
    "approximate_shapley",
    "approximate_shapley_all",
    "banzhaf_all_brute_force",
    "banzhaf_all_values",
    "banzhaf_brute_force",
    "banzhaf_fact_value",
    "banzhaf_from_counts",
    "banzhaf_value",
    "candidate_answers",
    "count_satisfying_subsets",
    "efficiency_gap",
    "estimator_variance_comparison",
    "exo_shapley",
    "extend_state",
    "gap_property_floor",
    "ground_at_answer",
    "head_assignment",
    "hoeffding_sample_count",
    "merge_totals",
    "model_count",
    "multiplicative_sample_lower_bound",
    "permutation_marginals",
    "query_game",
    "rewrite_to_hierarchical",
    "round_rng",
    "rounds_for_contract",
    "run_rounds",
    "sample_marginal_contributions",
    "sample_seed",
    "satisfaction_probability",
    "satisfying_subset_counts",
    "shapley_aggregate",
    "shapley_all",
    "shapley_all_brute_force",
    "shapley_all_values",
    "shapley_all_values_per_fact",
    "shapley_brute_force",
    "shapley_by_permutations",
    "shapley_by_subsets",
    "shapley_count",
    "shapley_for_answer",
    "shapley_from_counts",
    "shapley_hierarchical",
    "shapley_sum",
    "shapley_value",
    "stratified_shapley_estimate",
]

"""Workloads: the running example, canonical queries, generators, and traffic."""

from repro.workloads import generators, queries, running_example, traffic
from repro.workloads.generators import (
    export_database,
    random_database_for_query,
    random_delta,
    random_hierarchical_query,
    random_self_join_free_query,
    star_join_database,
)
from repro.workloads.traffic import (
    TrafficRequest,
    fleet_traffic,
    grounded_star_templates,
    request_stream,
    star_traffic,
)
from repro.workloads.running_example import (
    EXAMPLE_2_3_SHAPLEY,
    EXOGENOUS_RELATIONS,
    figure_1_database,
    query_q1,
    query_q2,
    query_q3,
    query_q4,
)

__all__ = [
    "EXAMPLE_2_3_SHAPLEY",
    "EXOGENOUS_RELATIONS",
    "export_database",
    "figure_1_database",
    "fleet_traffic",
    "generators",
    "grounded_star_templates",
    "queries",
    "query_q1",
    "query_q2",
    "query_q3",
    "query_q4",
    "TrafficRequest",
    "random_database_for_query",
    "random_delta",
    "random_hierarchical_query",
    "random_self_join_free_query",
    "request_stream",
    "running_example",
    "star_join_database",
    "star_traffic",
    "traffic",
]

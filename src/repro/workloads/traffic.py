"""Serve-oriented traffic: request streams for the attribution daemon.

The daemon's value shows up under *traffic*, not single requests: warm
stores absorb repeats, the coalescer absorbs concurrent duplicates, and
the registry absorbs re-uploads.  This module generates request streams
with a controlled repetition profile so benchmarks
(:mod:`benchmarks.bench_server`) and load tests can dial how much of a
workload is warm-servable.

A stream is a list of :class:`TrafficRequest` descriptors — plain data,
transport-agnostic: replay one against an
:class:`~repro.server.client.AttributionClient`, an in-process engine, or
subprocess CLI invocations, and compare.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.database import Database
from repro.workloads.generators import star_join_database


@dataclass(frozen=True)
class TrafficRequest:
    """One request of a serving workload.

    ``op`` is ``"batch"`` (Boolean query, all facts) or ``"answers"``
    (non-Boolean query, per-answer attribution) — mirroring the daemon's
    wire operations and the CLI verbs.
    """

    op: str
    query: str


#: Boolean queries over the running example's star schema, cheapest first.
STAR_BATCH_QUERIES = (
    "q() :- Stud(x), not TA(x), Reg(x, y)",
    "q() :- Stud(x), Reg(x, y)",
    "q() :- TA(x), Reg(x, y)",
    "q() :- Stud(x), not TA(x)",
    "q() :- Reg(x, y), Course(y, z)",
)

#: Non-Boolean companions (one engine batch per answer).
STAR_ANSWERS_QUERIES = (
    "ans(x) :- Stud(x), not TA(x), Reg(x, y)",
    "ans(x) :- Stud(x), Reg(x, y)",
)


def request_stream(
    templates: Sequence[TrafficRequest],
    num_requests: int,
    repeat_probability: float = 0.6,
    rng: random.Random | None = None,
) -> list[TrafficRequest]:
    """A stream over ``templates`` with a controlled warm fraction.

    Each position repeats an already-issued request with
    ``repeat_probability`` (popularity-weighted: a uniform draw over the
    issued prefix, so early requests — like real hot queries — recur
    more) and otherwise issues the next unseen template, cycling when
    they run out.  ``repeat_probability=0`` replays the templates in
    order; ``1.0`` hammers the first template — the pure-coalescing
    stress case.
    """
    rng = rng or random.Random()
    if not templates:
        raise ValueError("request_stream needs at least one template")
    if num_requests < 0:
        raise ValueError(f"num_requests must be >= 0, got {num_requests}")
    issued: list[TrafficRequest] = []
    stream: list[TrafficRequest] = []
    fresh = 0
    for _ in range(num_requests):
        if issued and rng.random() < repeat_probability:
            stream.append(rng.choice(issued))
        else:
            template = templates[fresh % len(templates)]
            fresh += 1
            issued.append(template)
            stream.append(template)
    return stream


def zipf_stream(
    templates: Sequence[TrafficRequest],
    num_requests: int,
    exponent: float = 1.1,
    rng: random.Random | None = None,
) -> list[TrafficRequest]:
    """A stream whose template popularity follows a Zipf law.

    Template ``i`` (0-based, in the given order) is drawn with weight
    ``1 / (i + 1) ** exponent`` — the classic heavy-tailed profile of
    real query logs: a small head of hot queries that coalescing and
    warm stores should absorb, plus a long tail that keeps the planner
    and admission queue honest.  ``exponent=0`` degenerates to a uniform
    mix; larger exponents concentrate the head.
    """
    rng = rng or random.Random()
    if not templates:
        raise ValueError("zipf_stream needs at least one template")
    if num_requests < 0:
        raise ValueError(f"num_requests must be >= 0, got {num_requests}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(templates))]
    total = sum(weights)
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    cumulative[-1] = 1.0  # guard against float drift at the boundary
    stream: list[TrafficRequest] = []
    for _ in range(num_requests):
        draw = rng.random()
        index = next(i for i, bound in enumerate(cumulative) if draw <= bound)
        stream.append(templates[index])
    return stream


def grounded_star_templates(
    num_students: int, num_courses: int
) -> list[TrafficRequest]:
    """Distinct-key templates over the star schema, one per constant.

    Grounded per-course and per-student variants of the star queries:
    every template is its own request (and therefore its own routing key
    for a :class:`~repro.server.fleet.FleetClient` hash ring), unlike
    the handful of shared templates in :data:`STAR_BATCH_QUERIES`.  Many
    distinct keys is what lets a fleet split a workload evenly — and
    what the fleet benchmarks need to measure scaling rather than the
    luck of a few keys' ring placement.  Costs stay tractable: each
    family avoids self-joins, so per-query work grows polynomially with
    the schema size.
    """
    templates: list[TrafficRequest] = []
    for course in range(num_courses):
        name = f'"c{course}"'
        templates.append(
            TrafficRequest(
                "batch", f"q() :- Stud(x), not TA(x), Reg(x, {name})"
            )
        )
        templates.append(
            TrafficRequest(
                "batch",
                f"q() :- Reg(x, {name}), Course({name}, z), not TA(x)",
            )
        )
        templates.append(
            TrafficRequest(
                "batch", f"q() :- Stud(x), Reg(x, {name}), Course({name}, z)"
            )
        )
        templates.append(
            TrafficRequest("answers", f"ans(x) :- Reg(x, {name}), not TA(x)")
        )
    for student in range(num_students):
        name = f'"s{student}"'
        templates.append(
            TrafficRequest(
                "batch",
                f"q() :- Stud({name}), not TA({name}), Reg({name}, y)",
            )
        )
    return templates


def fleet_traffic(
    num_requests: int,
    num_students: int = 8,
    num_courses: int = 3,
    exponent: float = 1.1,
    rng: random.Random | None = None,
) -> tuple[Database, list[TrafficRequest]]:
    """The fleet workload: a Zipf mix over many distinct routing keys.

    Returns ``(database, stream)`` like :func:`storm_traffic`, but drawn
    from :func:`grounded_star_templates` — ``4 * num_courses +
    num_students`` distinct requests instead of seven shared templates.
    This is what fleet routing benchmarks and the CI fleet smoke replay:
    enough keys that a consistent-hash ring spreads the load over every
    daemon, with the Zipf head still exercising the warm tiers.
    """
    rng = rng or random.Random()
    database = star_join_database(num_students, num_courses, rng=rng)
    templates = grounded_star_templates(num_students, num_courses)
    return database, zipf_stream(templates, num_requests, exponent, rng)


def storm_traffic(
    num_requests: int,
    num_students: int = 8,
    num_courses: int = 3,
    exponent: float = 1.1,
    answers_fraction: float = 0.25,
    rng: random.Random | None = None,
) -> tuple[Database, list[TrafficRequest]]:
    """The storm workload: a Zipf query mix over the star schema.

    Returns ``(database, stream)`` like :func:`star_traffic`, but the
    stream is drawn by :func:`zipf_stream` over a template order that
    interleaves per-answer requests into the Boolean ranks at roughly
    ``answers_fraction`` density.  This is the mix the server storm
    benchmark replays from many concurrent pipelined clients: the hot
    head exercises coalescing under contention, the tail exercises the
    admission queue.
    """
    rng = rng or random.Random()
    database = star_join_database(num_students, num_courses, rng=rng)
    batches = [TrafficRequest("batch", text) for text in STAR_BATCH_QUERIES]
    answers = [TrafficRequest("answers", text) for text in STAR_ANSWERS_QUERIES]
    # Deterministic interleave: every 1/answers_fraction-th rank is a
    # per-answer template, so the heavy head stays mostly cheap Boolean
    # queries and the answers land mid-tail.
    mixed: list[TrafficRequest] = []
    step = max(1, round(1.0 / answers_fraction)) if answers_fraction > 0 else 0
    answer_index = 0
    for rank, template in enumerate(batches, start=1):
        mixed.append(template)
        if step and rank % step == 0 and answer_index < len(answers):
            mixed.append(answers[answer_index])
            answer_index += 1
    mixed.extend(answers[answer_index:] if step else [])
    return database, zipf_stream(mixed, num_requests, exponent, rng)


def star_traffic(
    num_requests: int,
    num_students: int = 8,
    num_courses: int = 3,
    repeat_probability: float = 0.6,
    answers_probability: float = 0.25,
    rng: random.Random | None = None,
) -> tuple[Database, list[TrafficRequest]]:
    """A ready-to-serve workload on the running example's star schema.

    Returns ``(database, stream)``: a
    :func:`~repro.workloads.generators.star_join_database` instance plus
    a :func:`request_stream` mixing Boolean batches with per-answer
    requests (``answers_probability`` of the templates).  This is the
    workload of the daemon benchmarks: enough repetition to exercise the
    warm stores, enough distinct queries to keep the planner honest.
    """
    rng = rng or random.Random()
    database = star_join_database(num_students, num_courses, rng=rng)
    templates = [TrafficRequest("batch", text) for text in STAR_BATCH_QUERIES]
    answer_templates = [
        TrafficRequest("answers", text) for text in STAR_ANSWERS_QUERIES
    ]
    # Interleave answer templates at the requested density, keeping the
    # cheap Boolean queries in front so short streams stay cheap.
    mixed: list[TrafficRequest] = []
    answer_index = 0
    for template in templates:
        mixed.append(template)
        if answer_index < len(answer_templates) and rng.random() < (
            answers_probability * len(templates) / max(1, len(answer_templates))
        ):
            mixed.append(answer_templates[answer_index])
            answer_index += 1
    mixed.extend(answer_templates[answer_index:])
    return database, request_stream(mixed, num_requests, repeat_probability, rng)


__all__ = [
    "STAR_ANSWERS_QUERIES",
    "STAR_BATCH_QUERIES",
    "TrafficRequest",
    "fleet_traffic",
    "grounded_star_templates",
    "request_stream",
    "star_traffic",
    "storm_traffic",
    "zipf_stream",
]

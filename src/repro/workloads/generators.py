"""Synthetic workload generators: random databases and random queries.

The paper has no external datasets (all its objects are synthetic
constructions), so these generators provide the instance families for the
property-based tests and the scaling benchmarks:

* random databases for a fixed query, with controlled domain size and
  endogenous ratio;
* random hierarchical self-join-free CQ¬s (built top-down from the
  hierarchy tree, so hierarchicality holds by construction);
* random arbitrary self-join-free CQ¬s (for the dichotomy classifiers);
* scaling families for the Section 4 exogenous-relation experiments.
"""

from __future__ import annotations

import itertools
import random
from typing import Sequence

from repro.core.database import Database
from repro.core.facts import Fact
from repro.core.query import Atom, ConjunctiveQuery, Variable


def random_database_for_query(
    query: ConjunctiveQuery,
    domain_size: int = 4,
    fill_probability: float = 0.45,
    endogenous_probability: float = 0.6,
    exogenous_relations: Sequence[str] = (),
    rng: random.Random | None = None,
) -> Database:
    """A random database over the query's schema.

    Every relation of the query gets each tuple over ``{0..domain_size-1}``
    independently with ``fill_probability``; facts of relations listed in
    ``exogenous_relations`` are exogenous, other facts are endogenous with
    ``endogenous_probability``.  Constants mentioned by the query are
    added to the domain so constant atoms are exercised.
    """
    rng = rng or random.Random()
    domain: list = list(range(domain_size))
    for atom in query.atoms:
        for constant in atom.constants:
            if constant not in domain:
                domain.append(constant)
    arities = {atom.relation: atom.arity for atom in query.atoms}
    db = Database()
    for relation, arity in sorted(arities.items()):
        for combo in itertools.product(domain, repeat=arity):
            if rng.random() >= fill_probability:
                continue
            endogenous = (
                relation not in exogenous_relations
                and rng.random() < endogenous_probability
            )
            db.add(Fact(relation, combo), endogenous=endogenous)
    return db


def _fresh_relation_name(index: int) -> str:
    return f"R{index}"


def random_hierarchical_query(
    max_depth: int = 3,
    max_children: int = 2,
    negation_probability: float = 0.35,
    rng: random.Random | None = None,
) -> ConjunctiveQuery:
    """A random hierarchical self-join-free CQ¬ with safe negation.

    Construction: a hierarchy tree.  Each node owns a variable shared by
    all atoms in its subtree; leaves emit atoms over their ancestor
    variables.  Sibling subtrees share no variables below the common
    ancestors, which is exactly the hierarchical condition.  Negated atoms
    are only emitted alongside a positive sibling over the same variables
    (keeping negation safe).
    """
    rng = rng or random.Random()
    counter = itertools.count()
    atoms: list[Atom] = []

    def grow(ancestors: tuple[Variable, ...], depth: int) -> None:
        var = Variable(f"v{next(counter)}")
        scope = ancestors + (var,)
        children = rng.randint(0, max_children) if depth < max_depth else 0
        if children == 0:
            relation = _fresh_relation_name(len(atoms))
            atoms.append(Atom(relation, scope, negated=False))
            if rng.random() < negation_probability:
                # The negated atom's variable set must be a *prefix* of the
                # root-to-leaf chain, otherwise hierarchicality breaks.
                relation = _fresh_relation_name(len(atoms))
                prefix = scope[: rng.randint(1, len(scope))]
                terms = prefix + ((prefix[-1],) if rng.random() < 0.3 else ())
                atoms.append(Atom(relation, terms, negated=True))
            return
        for _ in range(children):
            grow(scope, depth + 1)
        if rng.random() < 0.5:
            relation = _fresh_relation_name(len(atoms))
            atoms.append(Atom(relation, scope, negated=False))

    roots = rng.randint(1, 2)
    for _ in range(roots):
        grow((), 1)
    return ConjunctiveQuery(tuple(atoms), name="qrand")


def random_self_join_free_query(
    num_variables: int = 4,
    num_atoms: int = 4,
    negation_probability: float = 0.3,
    max_arity: int = 3,
    rng: random.Random | None = None,
) -> ConjunctiveQuery:
    """A random self-join-free CQ¬ (not necessarily hierarchical).

    Safety is enforced by construction: negated atoms draw variables from
    those already used positively.
    """
    rng = rng or random.Random()
    variables = [Variable(f"v{i}") for i in range(num_variables)]
    atoms: list[Atom] = []
    used_positively: list[Variable] = []
    for index in range(num_atoms):
        relation = _fresh_relation_name(index)
        arity = rng.randint(1, max_arity)
        can_negate = bool(used_positively) and index < num_atoms - 1
        negated = can_negate and rng.random() < negation_probability
        pool = used_positively if negated else variables
        terms = tuple(rng.choice(pool) for _ in range(arity))
        atoms.append(Atom(relation, terms, negated=negated))
        if not negated:
            used_positively.extend(
                term for term in terms if term not in used_positively
            )
    # Ensure at least one positive atom covering any stray negated-only case.
    if all(atom.negated for atom in atoms):
        atoms[0] = Atom(atoms[0].relation, atoms[0].terms, negated=False)
    return ConjunctiveQuery(tuple(atoms), name="qrand")


def star_join_database(
    num_students: int,
    num_courses: int,
    registration_probability: float = 0.5,
    ta_probability: float = 0.4,
    rng: random.Random | None = None,
) -> Database:
    """A scaled-up running-example database for the q1/q2 scaling benches.

    ``Stud`` and ``Course`` are exogenous, ``TA`` and ``Reg`` endogenous,
    mirroring Example 2.3's split.
    """
    rng = rng or random.Random()
    db = Database()
    faculties = ("EE", "CS")
    for j in range(num_courses):
        db.add_exogenous(Fact("Course", (f"c{j}", faculties[j % 2])))
    for i in range(num_students):
        name = f"s{i}"
        db.add_exogenous(Fact("Stud", (name,)))
        if rng.random() < ta_probability:
            db.add_endogenous(Fact("TA", (name,)))
        for j in range(num_courses):
            if rng.random() < registration_probability:
                db.add_endogenous(Fact("Reg", (name, f"c{j}")))
    return db


def hard_answers_database(
    num_answers: int,
    core_size: int = 4,
    link_probability: float = 0.6,
    rng: random.Random | None = None,
) -> Database:
    """A multi-answer instance whose groundings are brute-force games.

    ``W`` holds the candidate answers of
    :func:`repro.workloads.queries.audit_query`; ``R``/``S``/``T`` form
    the classic non-hierarchical qRST core (``S`` exogenous, which does
    *not* rescue tractability — the non-hierarchical path between the
    endogenous ``R`` and ``T`` remains), so the engine's dichotomy sends
    every grounding to coalition enumeration over all
    ``num_answers + 2 * core_size`` endogenous facts.  The groundings are
    independent and CPU-bound — the scaling workload of
    ``benchmarks/bench_parallel.py``.
    """
    rng = rng or random.Random()
    db = Database()
    for index in range(num_answers):
        db.add_endogenous(Fact("W", (f"w{index}",)))
    for index in range(core_size):
        db.add_endogenous(Fact("R", (index,)))
        db.add_endogenous(Fact("T", (index,)))
    for left in range(core_size):
        for right in range(core_size):
            if rng.random() < link_probability:
                db.add_exogenous(Fact("S", (left, right)))
    return db


def random_delta(
    database: Database,
    rng: random.Random | None = None,
    max_changes: int = 3,
):
    """A random fact-level delta against ``database``.

    Mixes the three edit kinds the delta-aware engine must survive:
    removals of existing facts, endogenous/exogenous *flips*, and
    insertions of (possibly brand-new) facts over the database's own
    schema and active domain.  Used by the incremental property tests
    and benchmarks; always applicable via
    :func:`repro.engine.delta.apply_delta`.
    """
    from repro.engine.delta import DatabaseDelta

    rng = rng or random.Random()
    existing = sorted(database.facts, key=repr)
    relations = sorted(database.relation_names)
    domain = sorted(database.active_domain(), key=repr) or [0]
    removed: set[Fact] = set()
    add_endogenous: set[Fact] = set()
    add_exogenous: set[Fact] = set()
    for _ in range(rng.randint(1, max_changes)):
        choice = rng.random()
        if choice < 0.35 and existing:
            item = rng.choice(existing)
            removed.add(item)
            add_endogenous.discard(item)
            add_exogenous.discard(item)
        elif choice < 0.6 and existing:
            item = rng.choice(existing)  # flip sides
            removed.discard(item)
            if database.is_endogenous(item):
                add_exogenous.add(item)
                add_endogenous.discard(item)
            else:
                add_endogenous.add(item)
                add_exogenous.discard(item)
        elif relations:
            relation = rng.choice(relations)
            arity = database.arity(relation)
            item = Fact(relation, tuple(rng.choice(domain) for _ in range(arity)))
            removed.discard(item)
            if rng.random() < 0.7:
                add_endogenous.add(item)
                add_exogenous.discard(item)
            else:
                add_exogenous.add(item)
                add_endogenous.discard(item)
    return DatabaseDelta(
        added_endogenous=frozenset(add_endogenous),
        added_exogenous=frozenset(add_exogenous),
        removed=frozenset(removed),
    )


def export_database(
    num_farmers: int,
    num_products: int,
    num_countries: int,
    export_probability: float = 0.35,
    grows_probability: float = 0.5,
    rng: random.Random | None = None,
) -> Database:
    """An instance of the introduction's export scenario (query (1)).

    ``Grows`` is exogenous (the paper's motivating use of exogenous
    relations); ``Farmer`` and ``Export`` facts are endogenous.
    """
    rng = rng or random.Random()
    db = Database()
    products = [f"p{j}" for j in range(num_products)]
    countries = [f"c{k}" for k in range(num_countries)]
    for k, country in enumerate(countries):
        for product in products:
            if rng.random() < grows_probability:
                db.add_exogenous(Fact("Grows", (country, product)))
    for i in range(num_farmers):
        farmer = f"m{i}"
        db.add_endogenous(Fact("Farmer", (farmer,)))
        for product in products:
            for country in countries:
                if rng.random() < export_probability:
                    db.add_endogenous(Fact("Export", (farmer, product, country)))
    return db

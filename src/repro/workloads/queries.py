"""Canonical queries used throughout the paper, ready to import.

Includes the four basic non-hierarchical queries of Section 3
(qRST, q¬RS¬T, qR¬ST, qRS¬T), the Section 4 pair q / q′ whose tractability
differs only through the non-hierarchical path, the Example 4.2 queries,
the hardness queries of Section 5 (qRST¬R and the UCQ¬ qSAT), the
Theorem 5.1 gap query, and the academic-citations query of Example 4.1.
"""

from __future__ import annotations

from repro.core.parser import parse_query, parse_ucq
from repro.core.query import ConjunctiveQuery, UnionQuery


def q_rst() -> ConjunctiveQuery:
    """qRST() :- R(x), S(x, y), T(y) — the classic hard query."""
    return parse_query("qRST() :- R(x), S(x, y), T(y)")


def q_nr_s_nt() -> ConjunctiveQuery:
    """q¬RS¬T() :- ¬R(x), S(x, y), ¬T(y) (Lemma B.1)."""
    return parse_query("qnRSnT() :- not R(x), S(x, y), not T(y)")


def q_r_ns_t() -> ConjunctiveQuery:
    """qR¬ST() :- R(x), ¬S(x, y), T(y) (Lemma B.2)."""
    return parse_query("qRnST() :- R(x), not S(x, y), T(y)")


def q_rs_nt() -> ConjunctiveQuery:
    """qRS¬T() :- R(x), S(x, y), ¬T(y) (Lemma B.3, the asymmetric one)."""
    return parse_query("qRSnT() :- R(x), S(x, y), not T(y)")


def section_4_q() -> ConjunctiveQuery:
    """q() :- ¬R(x,w), S(z,x), ¬P(z,w), T(y,w) — tractable with X={S,P}."""
    return parse_query("q() :- not R(x, w), S(z, x), not P(z, w), T(y, w)")


def section_4_q_prime() -> ConjunctiveQuery:
    """q′() :- ¬R(x,w), S(z,x), ¬P(z,y), T(y,w) — hard even with X={S,P}."""
    return parse_query("q() :- not R(x, w), S(z, x), not P(z, y), T(y, w)")


SECTION_4_EXOGENOUS = frozenset({"S", "P"})


def example_4_2_q() -> ConjunctiveQuery:
    """The first query of Example 4.2 (has a non-hierarchical path)."""
    return parse_query(
        "q() :- not R(x), Q(x, v), S(x, z), U(z, w), not P(w, y), T(y, v)"
    )


EXAMPLE_4_2_Q_EXOGENOUS = frozenset({"S", "U", "P"})


def example_4_2_q_prime() -> ConjunctiveQuery:
    """The second query of Example 4.2 (no non-hierarchical path)."""
    return parse_query(
        "q() :- U(t, r), not T(y), Q(y, w), not V(t), R(x, y),"
        " not S(x, z), O(z), P(u, y, w)"
    )


EXAMPLE_4_2_Q_PRIME_EXOGENOUS = frozenset({"R", "S", "O", "P", "V"})


def academic_query() -> ConjunctiveQuery:
    """Example 4.1: Author(x,y), Pub(x,z), Citations(z,w) with Pub, Citations exogenous."""
    return parse_query("q() :- Author(x, y), Pub(x, z), Citations(z, w)")


ACADEMIC_EXOGENOUS = frozenset({"Pub", "Citations"})


def gap_query() -> ConjunctiveQuery:
    """q() :- R(x), S(x, y), ¬R(y) — the Section 5.1 gap-violation query."""
    return parse_query("q() :- R(x), S(x, y), not R(y)")


def q_rst_nr() -> ConjunctiveQuery:
    """qRST¬R of Proposition 5.5 (relevance NP-complete for T-facts)."""
    return parse_query(
        "q() :- T(z), not R(x), not R(y), R(z), R(w), S(x, y, z, w)"
    )


def q_sat() -> UnionQuery:
    """The UCQ¬ qSAT of Proposition 5.8 (relevance NP-complete for R(0))."""
    return parse_ucq(
        "q() :- C(x1, x2, x3, v1, v2, v3), T(x1, v1), T(x2, v2), T(x3, v3)"
        " | q() :- V(x), not T(x, 1), not T(x, 0)"
        " | q() :- T(x, 1), T(x, 0)"
        " | q() :- R(0)",
        name="qSAT",
    )


def intro_export_query() -> ConjunctiveQuery:
    """The introduction's query (1): Farmer(m), Export(m,p,c), ¬Grows(c,p)."""
    return parse_query("q() :- Farmer(m), Export(m, p, c), not Grows(c, p)")


def audit_query() -> ConjunctiveQuery:
    """audit(w) :- W(w), R(x), S(x, y), T(y) — qRST behind a head variable.

    Every grounding ``q_t`` embeds the classic hard core, so the
    dichotomy sends each answer to coalition enumeration: independent,
    CPU-bound grounding tasks.  This is the workload family of
    ``benchmarks/bench_parallel.py`` (pair with
    :func:`repro.workloads.generators.hard_answers_database`).
    """
    return parse_query("audit(w) :- W(w), R(x), S(x, y), T(y)")

"""The paper's running example: the university database of Figure 1.

Relations ``Stud``, ``Course`` and ``Adv`` are exogenous; ``TA`` and
``Reg`` are endogenous (Example 2.3).  The module also exposes the
queries q1-q4 of Example 2.2 and the exact Shapley values of every
endogenous fact under q1 as reported in Example 2.3 (main text; the
values satisfy the efficiency axiom and sum to 1).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.database import Database
from repro.core.facts import Fact, fact
from repro.core.parser import parse_query
from repro.core.query import ConjunctiveQuery

# Endogenous facts, named as in Figure 1.
F_T1 = fact("TA", "Adam")
F_T2 = fact("TA", "Ben")
F_T3 = fact("TA", "David")
F_R1 = fact("Reg", "Adam", "OS")
F_R2 = fact("Reg", "Adam", "AI")
F_R3 = fact("Reg", "Ben", "OS")
F_R4 = fact("Reg", "Caroline", "DB")
F_R5 = fact("Reg", "Caroline", "IC")


def figure_1_database() -> Database:
    """The database of Figure 1 with the Example 2.3 endogenous split."""
    exogenous = [
        fact("Stud", "Adam"),
        fact("Stud", "Ben"),
        fact("Stud", "Caroline"),
        fact("Stud", "David"),
        fact("Course", "OS", "EE"),
        fact("Course", "IC", "EE"),
        fact("Course", "DB", "CS"),
        fact("Course", "AI", "CS"),
        fact("Adv", "Michael", "Adam"),
        fact("Adv", "Michael", "Ben"),
        fact("Adv", "Naomi", "Caroline"),
        fact("Adv", "Michael", "David"),
    ]
    endogenous = [F_T1, F_T2, F_T3, F_R1, F_R2, F_R3, F_R4, F_R5]
    return Database(endogenous=endogenous, exogenous=exogenous)


def query_q1() -> ConjunctiveQuery:
    """q1() :- Stud(x), ¬TA(x), Reg(x, y) — hierarchical (Example 2.2)."""
    return parse_query("q1() :- Stud(x), not TA(x), Reg(x, y)")


def query_q2() -> ConjunctiveQuery:
    """q2() :- Stud(x), ¬TA(x), Reg(x, y), ¬Course(y, CS) — non-hierarchical."""
    return parse_query("q2() :- Stud(x), not TA(x), Reg(x, y), not Course(y, 'CS')")


def query_q3() -> ConjunctiveQuery:
    """q3 with self-joins on Adv and TA (Example 2.2)."""
    return parse_query(
        "q3() :- Adv(x, y), Adv(x, z), not TA(y), not TA(z),"
        " Reg(y, 'IC'), Reg(z, 'DB')"
    )


def query_q4() -> ConjunctiveQuery:
    """q4 with self-joins and mixed polarity on TA and Reg (Example 2.2)."""
    return parse_query(
        "q4() :- Adv(x, y), Adv(x, z), TA(y), not TA(z),"
        " Reg(z, w), not Reg(y, w)"
    )


# Exact Shapley values under q1 as reported in Example 2.3 (main text).
EXAMPLE_2_3_SHAPLEY: dict[Fact, Fraction] = {
    F_T1: Fraction(-3, 28),
    F_T2: Fraction(-2, 35),
    F_T3: Fraction(0),
    F_R1: Fraction(37, 210),
    F_R2: Fraction(37, 210),
    F_R3: Fraction(27, 140),
    F_R4: Fraction(13, 42),
    F_R5: Fraction(13, 42),
}

EXOGENOUS_RELATIONS = frozenset({"Stud", "Course", "Adv"})

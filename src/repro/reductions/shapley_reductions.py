"""Query-to-query Shapley reductions (Lemmas B.1 and B.2).

These are the executable cores of the Theorem 3.1 hardness proofs:

* **Lemma B.1** (reverse-permutation argument): on databases where all of
  ``S`` is exogenous and every ``S(a,b)`` has both ``R(a)`` and ``T(b)``
  present, ``Shapley(D, qRST, f) = -Shapley(D, q¬RS¬T, f)``.
* **Lemma B.2** (complementation): replacing ``S`` by its complement over
  ``dom(R) × dom(T)`` gives ``Shapley(D, qRST, f) = Shapley(D', qR¬ST, f)``.

The functions build the transformed instances; the benchmarks check the
claimed equalities with exact arithmetic on random instances.
"""

from __future__ import annotations

import random

from repro.core.database import Database
from repro.core.facts import Fact


def random_rst_database(
    num_left: int,
    num_right: int,
    edge_probability: float = 0.5,
    endogenous_probability: float = 1.0,
    rng: random.Random | None = None,
) -> Database:
    """A random instance for the qRST family satisfying the B.1/B.2 premises.

    * every ``S`` fact is exogenous;
    * for every ``S(a, b)`` both ``R(a)`` and ``T(b)`` are facts of ``D``;
    * by default every ``R`` / ``T`` fact is endogenous — this matches the
      hardness database of Livshits et al. that the lemmas assume, and the
      exact equalities of Lemmas B.1/B.2 need it (with exogenous ``R``/``T``
      facts the two sides can differ).
    """
    rng = rng or random.Random()
    db = Database()
    lefts = [f"a{i}" for i in range(num_left)]
    rights = [f"b{j}" for j in range(num_right)]
    for a in lefts:
        db.add(Fact("R", (a,)), endogenous=rng.random() < endogenous_probability)
    for b in rights:
        db.add(Fact("T", (b,)), endogenous=rng.random() < endogenous_probability)
    for a in lefts:
        for b in rights:
            if rng.random() < edge_probability:
                db.add_exogenous(Fact("S", (a, b)))
    return db


def negate_rt_instance(database: Database) -> Database:
    """The identity transformation used by Lemma B.1.

    The lemma compares the *same* database under qRST and q¬RS¬T, so the
    instance is returned as-is (copied); the function exists to make the
    reduction explicit in the experiment code.
    """
    return database.copy()


def complement_s_instance(database: Database) -> Database:
    """The Lemma B.2 instance: complement ``S`` over ``dom(R) × dom(T)``.

    ``S'(a, b)`` holds iff ``R(a)`` and ``T(b)`` are facts of ``D`` and
    ``S(a, b)`` is not.
    """
    result = Database()
    for item in database.endogenous:
        if item.relation in ("R", "T"):
            result.add_endogenous(item)
    for item in database.exogenous:
        if item.relation in ("R", "T"):
            result.add_exogenous(item)
    r_values = [item.args[0] for item in database.relation("R")]
    t_values = [item.args[0] for item in database.relation("T")]
    present = {item.args for item in database.relation("S")}
    for a in sorted(r_values, key=repr):
        for b in sorted(t_values, key=repr):
            if (a, b) not in present:
                result.add_exogenous(Fact("S", (a, b)))
    return result

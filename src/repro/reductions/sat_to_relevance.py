"""CNF-to-relevance gadgets (Propositions 5.5 and 5.8, Figure 4).

Two constructions map satisfiability questions to relevance questions:

* :func:`q_rst_nr_instance` — the Figure 4 gadget: a (2+, 2−, 4+−)-CNF
  formula becomes a database over ``{R, S, T}`` such that the endogenous
  fact ``T(c)`` is relevant to ``qRST¬R`` **iff** the formula is
  satisfiable (Proposition 5.5);
* :func:`q_sat_instance` — a 3CNF formula becomes a database over
  ``{C, V, T, R}`` such that ``R(0)`` is relevant to the UCQ¬ ``qSAT``
  **iff** the formula is satisfiable (Proposition 5.8).

Each construction also exposes the *intended witness coalition* derived
from a satisfying assignment, so tests can verify the two directions of
the correctness proof separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import Database
from repro.core.facts import Fact
from repro.core.query import ConjunctiveQuery, UnionQuery
from repro.logic.cnf import Assignment, CnfFormula, clause_shape_2p2n4
from repro.workloads.queries import q_rst_nr, q_sat


@dataclass(frozen=True)
class RelevanceInstance:
    """A relevance question: is ``target`` relevant to ``query`` on ``database``?"""

    database: Database
    query: ConjunctiveQuery | UnionQuery
    target: Fact


def q_rst_nr_instance(formula: CnfFormula) -> RelevanceInstance:
    """The Proposition 5.5 / Figure 4 gadget for a (2+, 2−, 4+−)-CNF formula.

    Requires at least one positive 2-clause (the paper's WLOG assumption:
    formulas without one are satisfied by the all-zero assignment, making
    satisfiability trivial).
    """
    shapes = [clause_shape_2p2n4(clause) for clause in formula.clauses]
    if any(shape is None for shape in shapes):
        raise ValueError("the gadget needs a (2+, 2−, 4+−)-CNF formula")
    if "2+" not in shapes:
        raise ValueError(
            "the gadget assumes at least one positive 2-clause"
            " (otherwise the all-zero assignment satisfies the formula)"
        )
    db = Database()
    for variable in sorted(formula.variables):
        db.add_endogenous(Fact("R", (variable,)))
        db.add_exogenous(Fact("T", (variable,)))
    for clause, shape in zip(formula.clauses, shapes):
        if shape == "2+":
            i, j = clause.positive_literals
            db.add_exogenous(Fact("S", (i, j, "a", "a")))
        elif shape == "2-":
            i, j = (-lit for lit in clause.negative_literals)
            db.add_exogenous(Fact("S", ("b", "b", i, j)))
        else:
            i, j = clause.positive_literals
            k, l = (-lit for lit in clause.negative_literals)
            db.add_exogenous(Fact("S", (i, j, k, l)))
    db.add_exogenous(Fact("R", ("a",)))
    db.add_exogenous(Fact("T", ("a",)))
    db.add_exogenous(Fact("R", ("c",)))
    db.add_exogenous(Fact("S", ("d", "d", "c", "c")))
    target = Fact("T", ("c",))
    db.add_endogenous(target)
    return RelevanceInstance(db, q_rst_nr(), target)


def q_rst_nr_witness_coalition(
    instance: RelevanceInstance, assignment: Assignment
) -> frozenset[Fact]:
    """The coalition ``E = {R(i) : z(x_i) = 1}`` from a satisfying assignment.

    Adding the target after exactly this coalition flips the query from
    false to true (the "if" direction of the Proposition 5.5 proof).
    """
    return frozenset(
        item
        for item in instance.database.endogenous
        if item.relation == "R" and assignment.get(item.args[0], False)
    )


def q_sat_instance(formula: CnfFormula) -> RelevanceInstance:
    """The Proposition 5.8 gadget for a 3CNF formula.

    Clause literals become ``C`` facts whose value components mark the
    *falsifying* choice of each variable (0 for a positive literal, 1 for
    a negative one).
    """
    if any(len(clause) != 3 for clause in formula.clauses):
        raise ValueError("the qSAT gadget expects exactly-3-literal clauses")
    db = Database()
    for variable in sorted(formula.variables):
        db.add_exogenous(Fact("V", (variable,)))
        db.add_endogenous(Fact("T", (variable, 1)))
        db.add_endogenous(Fact("T", (variable, 0)))
    for clause in formula.clauses:
        variables = tuple(abs(literal) for literal in clause.literals)
        values = tuple(1 if literal < 0 else 0 for literal in clause.literals)
        db.add_exogenous(Fact("C", variables + values))
    target = Fact("R", (0,))
    db.add_endogenous(target)
    return RelevanceInstance(db, q_sat(), target)


def q_sat_witness_coalition(
    instance: RelevanceInstance, assignment: Assignment
) -> frozenset[Fact]:
    """The coalition ``E = {T(i, z(x_i))}`` from a satisfying assignment."""
    return frozenset(
        item
        for item in instance.database.endogenous
        if item.relation == "T"
        and item.args[1] == (1 if assignment.get(item.args[0], False) else 0)
    )

"""The gap-property violation (Section 5.1 and Theorem 5.1).

For CQs without negation, a nonzero Shapley value is at least the
reciprocal of a polynomial (the *gap property*), which upgrades the
additive FPRAS to a multiplicative one.  The paper's Section 5.1 example
breaks this with the query ``q() :- R(x), S(x, y), ¬R(y)`` and a database
family where ``Shapley(D_n, q, f) = n!·n!/(2n+1)! ≤ 2^-Θ(n)``.

:func:`gap_instance` builds that concrete family;
:func:`theorem_5_1_family` implements the general construction of the
Theorem 5.1 proof for *any* satisfiable, constant-free, positively
connected CQ¬ with a negated atom, by gluing ``n`` copies of a minimal
"almost-satisfying" database with ``n + 1`` copies of a minimal satisfying
one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from math import factorial

from repro.core.database import Database
from repro.core.evaluation import holds
from repro.core.facts import Fact
from repro.core.gaifman import is_positively_connected
from repro.core.query import ConjunctiveQuery
from repro.workloads.queries import gap_query


@dataclass(frozen=True)
class GapInstance:
    """A database, query, target fact, and the closed-form Shapley value."""

    database: Database
    query: ConjunctiveQuery
    target: Fact
    expected_value: Fraction


def expected_gap_value(n: int) -> Fraction:
    """``n!·n!/(2n+1)!`` — the exact Shapley value of the Section 5.1 family."""
    if n < 1:
        raise ValueError("the gap family needs n >= 1")
    return Fraction(factorial(n) * factorial(n), factorial(2 * n + 1))


def gap_instance(n: int) -> GapInstance:
    """The Section 5.1 database ``D_n`` for ``q() :- R(x), S(x, y), ¬R(y)``.

    Constants ``x_i`` / ``y_i`` play the roles of ``c^i_x`` / ``c^i_y``;
    the target fact is ``R(x_0)`` whose Shapley value is exponentially
    small yet strictly positive.
    """
    if n < 1:
        raise ValueError("the gap family needs n >= 1")
    db = Database()
    for i in range(2 * n + 1):
        db.add_exogenous(Fact("S", (f"x{i}", f"y{i}")))
    for i in range(1, n + 1):
        db.add_exogenous(Fact("R", (f"x{i}",)))
        db.add_endogenous(Fact("R", (f"y{i}",)))
    for i in (0, *range(n + 1, 2 * n + 1)):
        db.add_endogenous(Fact("R", (f"x{i}",)))
    return GapInstance(db, gap_query(), Fact("R", ("x0",)), expected_gap_value(n))


# ----------------------------------------------------------------------
# General Theorem 5.1 construction
# ----------------------------------------------------------------------
def _canonical_satisfying_database(query: ConjunctiveQuery) -> frozenset[Fact]:
    """A minimal satisfying database: freeze each variable to a fresh constant.

    For a constant-free CQ¬ the frozen instance satisfies the query unless
    a negated atom collides with a positive one under the freezing, in
    which case the query is reported unsatisfiable for this construction.
    """
    freeze = {var: f"c_{var.name}" for var in query.variables}
    facts = frozenset(
        atom.substitute(freeze).to_fact() for atom in query.positive_atoms
    )
    if not holds(query, facts):
        raise ValueError(
            f"the canonical freezing of {query!r} does not satisfy it;"
            " Theorem 5.1 needs a satisfiable query"
        )
    # Minimality matters: in the D'_q copies, removing the chosen fact must
    # break satisfaction, so every fact must be essential.
    current = set(facts)
    for item in sorted(facts, key=repr):
        if holds(query, current - {item}):
            current.remove(item)
    return frozenset(current)


def _rename(facts: frozenset[Fact], tag: str) -> frozenset[Fact]:
    """An isomorphic copy of ``facts`` over a disjoint constant domain."""
    return frozenset(
        Fact(item.relation, tuple(f"{tag}:{value}" for value in item.args))
        for item in facts
    )


def _blocking_extension(
    query: ConjunctiveQuery, base: frozenset[Fact]
) -> tuple[frozenset[Fact], Fact]:
    """Grow ``base`` with negated-relation facts until the query fails.

    Returns the unsatisfying database and the *last* fact added, i.e. the
    fact ``f`` with ``(D \\ {f}) ⊨ q`` and ``D ⊭ q`` of the proof.
    """
    domain = sorted({value for item in base for value in item.args})
    negated_relations = sorted(
        {atom.relation for atom in query.negative_atoms}
    )
    arity = {atom.relation: atom.arity for atom in query.atoms}
    current = set(base)
    for relation in negated_relations:
        for combo in itertools.product(domain, repeat=arity[relation]):
            candidate = Fact(relation, combo)
            if candidate in current:
                continue
            current.add(candidate)
            if not holds(query, current):
                return frozenset(current), candidate
    raise ValueError(
        f"could not block {query!r} by adding negated-relation facts;"
        " the query may be trivially satisfiable"
    )


def _minimize_blocked(
    query: ConjunctiveQuery, facts: frozenset[Fact], blocker: Fact
) -> frozenset[Fact]:
    """Shrink a blocked database while keeping ``(D \\ {f}) ⊨ q`` and ``D ⊭ q``."""
    current = set(facts)
    for item in sorted(facts - {blocker}, key=repr):
        trial = current - {item}
        if blocker in trial and not holds(query, trial) and holds(
            query, trial - {blocker}
        ):
            current = trial
    return frozenset(current)


@dataclass(frozen=True)
class Theorem51Family:
    """The database family of Theorem 5.1 for one value of ``n``."""

    database: Database
    query: ConjunctiveQuery
    target: Fact
    n: int

    @property
    def upper_bound(self) -> Fraction:
        """The proof's bound ``n!·n!/(2n+1)!`` on the Shapley value."""
        return Fraction(
            factorial(self.n) * factorial(self.n), factorial(2 * self.n + 1)
        )


def theorem_5_1_family(query: ConjunctiveQuery, n: int) -> Theorem51Family:
    """Instantiate the Theorem 5.1 construction for ``query`` at size ``n``.

    Preconditions (checked): the query is Boolean, constant-free, has a
    negated atom, is positively connected, and is satisfiable by its
    canonical freezing.  The resulting database has ``2n + 1`` endogenous
    facts and the target's Shapley value is nonzero with magnitude at most
    ``n!·n!/(2n+1)!``.
    """
    query = query.as_boolean()
    if n < 1:
        raise ValueError("the family needs n >= 1")
    if not query.negative_atoms:
        raise ValueError("Theorem 5.1 applies to queries with a negated atom")
    if any(atom.constants for atom in query.atoms):
        raise ValueError("Theorem 5.1 applies to constant-free queries")
    if not is_positively_connected(query):
        raise ValueError("Theorem 5.1 applies to positively connected queries")

    satisfying = _canonical_satisfying_database(query)
    blocked, blocker = _blocking_extension(query, satisfying)
    blocked = _minimize_blocked(query, blocked, blocker)

    def renamed(item: Fact, tag: str) -> Fact:
        return Fact(item.relation, tuple(f"{tag}:{value}" for value in item.args))

    db = Database()
    # Copies D_1..D_n: blocked databases, endogenous fact f_i = blocker.
    for i in range(1, n + 1):
        tag = f"d{i}"
        marked = renamed(blocker, tag)
        for item in _rename(blocked, tag):
            db.add(item, endogenous=item == marked)
    # Copies D_0, D_{n+1}..D_{2n}: minimal satisfying databases, endogenous
    # fact f_i = a deterministically chosen member.
    chosen = sorted(satisfying, key=repr)[0]
    target = renamed(chosen, "s0")
    for i in (0, *range(n + 1, 2 * n + 1)):
        tag = f"s{i}"
        marked = renamed(chosen, tag)
        for item in _rename(satisfying, tag):
            db.add(item, endogenous=item == marked)
    return Theorem51Family(db, query, target, n)

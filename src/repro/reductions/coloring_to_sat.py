"""The Lemma D.1 reduction chain: 3-coloring → (3+, 2−)-SAT → (2+, 2−, 4+−)-SAT.

The paper proves (2+, 2−, 4+−)-SAT NP-complete in two steps, both
implemented here and validated end-to-end by the tests:

1. a graph is 3-colorable iff the (3+, 2−)-CNF formula of
   :func:`coloring_to_3p2n` is satisfiable (a positive 3-clause per vertex,
   negative 2-clauses per edge/color and per vertex/color-pair);
2. a (3+, 2−)-CNF formula is satisfiable iff its
   :func:`three_p2n_to_2p2n4` rewriting is — each positive 3-clause
   ``(x ∨ y ∨ z)`` becomes ``(x ∨ y ∨ ¬t ∨ ¬t) ∧ (z ∨ t) ∧ (¬z ∨ ¬t)``
   with a fresh variable ``t``.

Composed with :func:`repro.reductions.sat_to_relevance.q_rst_nr_instance`,
this executes the full hardness pipeline of Proposition 5.5 from a graph
down to a relevance question.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.logic.cnf import Clause, CnfFormula


@dataclass(frozen=True)
class SimpleGraph:
    """An undirected graph for the coloring reduction."""

    vertices: tuple[str, ...]
    edges: frozenset[frozenset]

    def __post_init__(self) -> None:
        for edge in self.edges:
            if len(edge) != 2 or not edge <= set(self.vertices):
                raise ValueError(f"bad edge {set(edge)}")

    @classmethod
    def from_edge_list(
        cls, vertices: tuple[str, ...], edges: tuple[tuple[str, str], ...]
    ) -> "SimpleGraph":
        return cls(vertices, frozenset(frozenset(edge) for edge in edges))


def random_graph(
    num_vertices: int,
    edge_probability: float = 0.4,
    rng: random.Random | None = None,
) -> SimpleGraph:
    rng = rng or random.Random()
    vertices = tuple(f"v{i}" for i in range(num_vertices))
    edges = frozenset(
        frozenset((u, v))
        for u, v in itertools.combinations(vertices, 2)
        if rng.random() < edge_probability
    )
    return SimpleGraph(vertices, edges)


def is_3_colorable(graph: SimpleGraph) -> bool:
    """Brute-force 3-colorability (ground truth for small graphs)."""
    for coloring in itertools.product(range(3), repeat=len(graph.vertices)):
        assignment = dict(zip(graph.vertices, coloring))
        if all(
            assignment[u] != assignment[v]
            for u, v in (tuple(edge) for edge in graph.edges)
        ):
            return True
    return False


def coloring_to_3p2n(graph: SimpleGraph) -> CnfFormula:
    """The (3+, 2−)-CNF formula of the Lemma D.1 first step.

    Variable ``x_v^c`` (encoded as an integer) says "vertex v gets color c".
    """
    index: dict[tuple[str, int], int] = {}
    for v in graph.vertices:
        for color in range(3):
            index[(v, color)] = len(index) + 1
    clauses: list[Clause] = []
    for v in graph.vertices:
        clauses.append(
            Clause((index[(v, 0)], index[(v, 1)], index[(v, 2)]))
        )
    for edge in sorted(graph.edges, key=lambda e: sorted(e)):
        u, v = sorted(edge)
        for color in range(3):
            clauses.append(Clause((-index[(u, color)], -index[(v, color)])))
    for v in graph.vertices:
        for c1, c2 in itertools.combinations(range(3), 2):
            clauses.append(Clause((-index[(v, c1)], -index[(v, c2)])))
    return CnfFormula(tuple(clauses))


def three_p2n_to_2p2n4(formula: CnfFormula) -> CnfFormula:
    """The (3+, 2−) → (2+, 2−, 4+−) rewriting of the Lemma D.1 second step."""
    next_variable = max(formula.variables, default=0) + 1
    clauses: list[Clause] = []
    for clause in formula.clauses:
        positives = clause.positive_literals
        negatives = clause.negative_literals
        if len(negatives) == 2 and not positives:
            clauses.append(clause)
        elif len(positives) == 3 and not negatives:
            x, y, z = positives
            t = next_variable
            next_variable += 1
            clauses.append(Clause((x, y, -t, -t)))
            clauses.append(Clause((z, t)))
            clauses.append(Clause((-z, -t)))
        else:
            raise ValueError(f"not a (3+, 2−) clause: {clause!r}")
    return CnfFormula(tuple(clauses))


def coloring_to_2p2n4(graph: SimpleGraph) -> CnfFormula:
    """The full Lemma D.1 chain: graph → (2+, 2−, 4+−)-CNF."""
    return three_p2n_to_2p2n4(coloring_to_3p2n(graph))

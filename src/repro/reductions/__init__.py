"""Executable hardness gadgets and constructions from the paper's proofs."""

from repro.reductions.coloring_to_sat import (
    SimpleGraph,
    coloring_to_2p2n4,
    coloring_to_3p2n,
    is_3_colorable,
    random_graph,
    three_p2n_to_2p2n4,
)
from repro.reductions.embedding import (
    EmbeddedInstance,
    embed_rst_instance,
    normalize_triplet,
    select_source_query,
)
from repro.reductions.gap import (
    GapInstance,
    Theorem51Family,
    expected_gap_value,
    gap_instance,
    theorem_5_1_family,
)
from repro.reductions.independent_set import (
    BipartiteGraph,
    closure_counts,
    independent_set_count,
    instance_d0,
    instance_dr,
    random_bipartite_graph,
    recover_independent_set_count,
    solve_linear_system,
)
from repro.reductions.path_embedding import (
    PathEmbeddedInstance,
    embed_rst_instance_via_path,
)
from repro.reductions.sat_to_relevance import (
    RelevanceInstance,
    q_rst_nr_instance,
    q_rst_nr_witness_coalition,
    q_sat_instance,
    q_sat_witness_coalition,
)
from repro.reductions.shapley_reductions import (
    complement_s_instance,
    negate_rt_instance,
    random_rst_database,
)

__all__ = [
    "BipartiteGraph",
    "EmbeddedInstance",
    "GapInstance",
    "PathEmbeddedInstance",
    "RelevanceInstance",
    "SimpleGraph",
    "Theorem51Family",
    "closure_counts",
    "coloring_to_2p2n4",
    "coloring_to_3p2n",
    "complement_s_instance",
    "embed_rst_instance",
    "embed_rst_instance_via_path",
    "expected_gap_value",
    "normalize_triplet",
    "gap_instance",
    "independent_set_count",
    "instance_d0",
    "instance_dr",
    "is_3_colorable",
    "negate_rt_instance",
    "q_rst_nr_instance",
    "q_rst_nr_witness_coalition",
    "q_sat_instance",
    "q_sat_witness_coalition",
    "random_bipartite_graph",
    "random_graph",
    "random_rst_database",
    "recover_independent_set_count",
    "select_source_query",
    "solve_linear_system",
    "theorem_5_1_family",
    "three_p2n_to_2p2n4",
]

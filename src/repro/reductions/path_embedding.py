"""The Appendix C embedding: hardness through a non-hierarchical *path*.

Theorem 4.3's negative side reduces a basic RST query to any self-join-
free CQ¬ with a non-hierarchical path w.r.t. the exogenous relations
``X``.  Unlike the Lemma B.4 embedding (which routes the ``S`` relation
through the single middle atom), this construction threads each edge
``S(a, b)`` through the *entire path*: the variables ``v1 … vn`` along
the path all receive the pair value ``⟨a, b⟩``, so a homomorphism exists
precisely when its endpoints agree on one original edge.

Construction (following Appendix C):

1. ``R(a)``/``T(b)`` become (endogenous iff they were) facts of the two
   inducing atoms ``αx`` / ``αy`` with the other variables padded by ⊙;
2. every ``S(a, b)`` stamps an exogenous fact into every *other* atom
   under ``x ↦ a, y ↦ b, v_i ↦ ⟨a, b⟩``, rest ↦ ⊙;
3. relations of negative atoms are complemented over the new active
   domain (their endogenous facts are kept as-is) — the same trick as
   Lemma B.2/C.3.

The result preserves every endogenous fact's Shapley value, which the
tests check against brute force; running it is the executable form of
"Shapley for q is FP^#P-hard whenever q has a non-hierarchical path".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import AbstractSet

from repro.core.database import Database
from repro.core.errors import SelfJoinError
from repro.core.facts import Constant, Fact
from repro.core.gaifman import gaifman_graph
from repro.core.paths import NonHierarchicalPath, find_non_hierarchical_path
from repro.core.query import Atom, ConjunctiveQuery, Variable
from repro.reductions.embedding import PADDING, select_source_query
from repro.core.hierarchy import NonHierarchicalTriplet


@dataclass(frozen=True)
class PathEmbeddedInstance:
    """The embedded database plus the endogenous-fact correspondence."""

    database: Database
    query: ConjunctiveQuery
    source_query: ConjunctiveQuery
    fact_map: dict[Fact, Fact]
    path: NonHierarchicalPath
    path_variables: tuple[Variable, ...]


def _find_path_vertices(
    query: ConjunctiveQuery, witness: NonHierarchicalPath
) -> tuple[Variable, ...]:
    """The interior variables ``v1 … vn`` of the witnessing path."""
    graph = gaifman_graph(query)
    forbidden = (
        witness.atom_x.variables | witness.atom_y.variables
    ) - {witness.x, witness.y}
    # Breadth-first search recording parents, avoiding forbidden vertices.
    from collections import deque

    parents: dict[Variable, Variable] = {}
    seen = {witness.x}
    queue = deque([witness.x])
    while queue:
        current = queue.popleft()
        if current == witness.y:
            break
        for neighbor in graph.neighbors(current):
            if neighbor in forbidden or neighbor in seen:
                continue
            seen.add(neighbor)
            parents[neighbor] = current
            queue.append(neighbor)
    if witness.y not in seen:
        raise ValueError("witness path no longer present in the Gaifman graph")
    chain: list[Variable] = []
    current = witness.y
    while current != witness.x:
        chain.append(current)
        current = parents.get(current, witness.x)
        if current == witness.x:
            break
    chain.reverse()
    return tuple(chain[:-1]) if chain and chain[-1] == witness.y else tuple(chain)


def _orient(witness: NonHierarchicalPath) -> NonHierarchicalPath:
    """Put a lone negative inducing atom on the y side (qRS¬T shape)."""
    if witness.atom_x.negated and not witness.atom_y.negated:
        return NonHierarchicalPath(
            witness.atom_y, witness.atom_x, witness.y, witness.x
        )
    return witness


def _source_for(witness: NonHierarchicalPath) -> ConjunctiveQuery:
    """Reuse the Lemma B.4 polarity table with a positive pseudo-middle."""
    pseudo_middle = Atom("_S", (witness.x, witness.y), negated=False)
    triplet = NonHierarchicalTriplet(
        witness.atom_x, pseudo_middle, witness.atom_y, witness.x, witness.y
    )
    return select_source_query(triplet)


def _image(
    atom: Atom,
    witness: NonHierarchicalPath,
    path_vars: tuple[Variable, ...],
    a: Constant,
    b: Constant,
) -> Fact:
    pair = (a, b)
    values = []
    for term in atom.terms:
        if not isinstance(term, Variable):
            values.append(term)
        elif term == witness.x:
            values.append(a)
        elif term == witness.y:
            values.append(b)
        elif term in path_vars:
            values.append(pair)
        else:
            values.append(PADDING)
    return Fact(atom.relation, tuple(values))


def embed_rst_instance_via_path(
    query: ConjunctiveQuery,
    source_db: Database,
    exogenous_relations: AbstractSet[str] = frozenset(),
    witness: NonHierarchicalPath | None = None,
) -> PathEmbeddedInstance:
    """Embed an RST-family database along a non-hierarchical path.

    ``source_db`` must keep every ``S`` fact exogenous and use fresh
    constants disjoint from ⊙ (the Lemma 3.3 instances qualify).
    """
    query = query.as_boolean()
    if not query.is_self_join_free:
        raise SelfJoinError("the Appendix C embedding needs a self-join-free query")
    if witness is None:
        witness = find_non_hierarchical_path(query, exogenous_relations)
    if witness is None:
        raise ValueError(
            f"{query!r} has no non-hierarchical path w.r.t."
            f" X={sorted(exogenous_relations)}; Theorem 4.3 calls it tractable"
        )
    for item in source_db.relation("S"):
        if source_db.is_endogenous(item):
            raise ValueError("the source instance must keep S exogenous")
    witness = _orient(witness)
    path_vars = _find_path_vertices(query, witness)
    source_query = _source_for(witness)

    intermediate = Database()
    fact_map: dict[Fact, Fact] = {}
    for item in source_db.relation("R"):
        target = _image(witness.atom_x, witness, path_vars, item.args[0], None)
        intermediate.add(target, endogenous=source_db.is_endogenous(item))
        fact_map[item] = target
    for item in source_db.relation("T"):
        target = _image(witness.atom_y, witness, path_vars, None, item.args[0])
        intermediate.add(target, endogenous=source_db.is_endogenous(item))
        fact_map[item] = target
    for item in source_db.relation("S"):
        a, b = item.args
        for atom in query.atoms:
            if atom in (witness.atom_x, witness.atom_y):
                continue
            intermediate.add_exogenous(_image(atom, witness, path_vars, a, b))

    # Complement the exogenous part of every negative atom's relation over
    # the new active domain (Lemma C.3 / the D'' step of Appendix C).
    domain = sorted(intermediate.active_domain(), key=repr)
    embedded = Database()
    for item in intermediate.endogenous:
        embedded.add_endogenous(item)
    negative_relations = {atom.relation for atom in query.negative_atoms}
    for atom in query.atoms:
        relation = atom.relation
        if relation in negative_relations:
            continue
        for item in intermediate.relation(relation):
            if intermediate.is_exogenous(item):
                embedded.add_exogenous(item)
    for relation in sorted(negative_relations):
        arity = next(
            atom.arity for atom in query.atoms if atom.relation == relation
        )
        present = {item.args for item in intermediate.relation(relation)}
        for combo in itertools.product(domain, repeat=arity):
            if combo not in present:
                embedded.add_exogenous(Fact(relation, combo))
    return PathEmbeddedInstance(
        embedded, query, source_query, fact_map, witness, path_vars
    )

"""The Lemma B.4 embedding: any non-hierarchical CQ¬ simulates an RST query.

The general hardness side of Theorem 3.1 reduces one of the four basic
queries (qRST, q¬RS¬T, qR¬ST, qRS¬T — chosen by the polarity of a
*reduction-safe* non-hierarchical triplet) to an arbitrary
non-hierarchical self-join-free CQ¬ ``q``: an input database ``D`` over
``{R, S, T}`` is embedded into a database ``D'`` over ``q``'s schema such
that every endogenous fact keeps its exact Shapley value.

This module makes that proof executable:

* :func:`select_source_query` picks the basic query matching the triplet;
* :func:`embed_rst_instance` builds ``D'`` and the fact correspondence;
* the tests and the E3 bench verify ``Shapley(D, q_src, f) ==
  Shapley(D', q, f')`` on random instances — the strongest runnable form
  of "computing the Shapley value for q is at least as hard as for qRST".

The embedding maps ``R(a)`` to the ``αx`` atom with ``x ↦ a`` and every
other variable to the padding constant ``⊙``; ``T(b)`` likewise through
``αy``; and each ``S(a, b)`` to exogenous facts of *every* other atom
under ``x ↦ a, y ↦ b``.  Relations of negative atoms outside the triplet
stay empty, so they never block a homomorphism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import Database
from repro.core.errors import SelfJoinError
from repro.core.facts import Fact
from repro.core.hierarchy import (
    NonHierarchicalTriplet,
    find_non_hierarchical_triplet,
)
from repro.core.query import Atom, ConjunctiveQuery
from repro.workloads.queries import q_nr_s_nt, q_r_ns_t, q_rs_nt, q_rst

PADDING = "⊙"


@dataclass(frozen=True)
class EmbeddedInstance:
    """The embedded database plus the endogenous-fact correspondence."""

    database: Database
    query: ConjunctiveQuery
    source_query: ConjunctiveQuery
    fact_map: dict[Fact, Fact]
    triplet: NonHierarchicalTriplet


def normalize_triplet(triplet: NonHierarchicalTriplet) -> NonHierarchicalTriplet:
    """Swap the side atoms so a lone negative side sits in the ``αy`` slot.

    qRS¬T negates its *unary, y-side* atom, so when exactly one side of
    the triplet is negative we orient the triplet to put it on the y
    side; all other shapes are symmetric in x/y.
    """
    if triplet.atom_x.negated and not triplet.atom_y.negated:
        return NonHierarchicalTriplet(
            triplet.atom_y, triplet.atom_xy, triplet.atom_x, triplet.y, triplet.x
        )
    return triplet


def select_source_query(triplet: NonHierarchicalTriplet) -> ConjunctiveQuery:
    """The basic query whose hardness transfers through this triplet.

    Polarities (αx, αxy, αy) → source (after normalization): all positive
    → qRST; negative sides around a positive middle → q¬RS¬T; negative
    middle with positive sides → qR¬ST; positive middle with exactly one
    negative side → qRS¬T.  (The paper's case list has a typo making the
    fourth case's middle "negative" — that shape contradicts the
    reduction-safety property proved in Lemma B.4; the consistent
    reading, used here, matches qRS¬T's actual polarity pattern.)
    """
    triplet = normalize_triplet(triplet)
    nx, nxy, ny = (
        triplet.atom_x.negated,
        triplet.atom_xy.negated,
        triplet.atom_y.negated,
    )
    if not nxy:
        if not nx and not ny:
            return q_rst()
        if nx and ny:
            return q_nr_s_nt()
        return q_rs_nt()  # exactly one negative side, on y after normalizing
    if not nx and not ny:
        return q_r_ns_t()
    raise ValueError(
        "triplet is not reduction-safe: a negative middle atom together"
        " with a negative side atom cannot be sourced (Lemma B.4"
        " guarantees a safe triplet always exists)"
    )


def _image(atom: Atom, x, y, a, b) -> Fact:
    """The fact obtained from ``atom`` under x ↦ a, y ↦ b, others ↦ ⊙."""
    from repro.core.query import Variable

    values = []
    for term in atom.terms:
        if not isinstance(term, Variable):
            values.append(term)  # a constant in the atom
        elif term == x:
            values.append(a)
        elif term == y:
            values.append(b)
        else:
            values.append(PADDING)
    return Fact(atom.relation, tuple(values))


def embed_rst_instance(
    query: ConjunctiveQuery,
    source_db: Database,
    triplet: NonHierarchicalTriplet | None = None,
) -> EmbeddedInstance:
    """Embed an RST-family database into ``query``'s schema (Lemma B.4).

    Preconditions: ``query`` self-join-free and non-hierarchical;
    ``source_db`` over relations ``R``, ``S``, ``T`` with every ``S`` fact
    exogenous (as in the hardness instances of Lemma 3.3).
    """
    query = query.as_boolean()
    if not query.is_self_join_free:
        raise SelfJoinError("Lemma B.4 embeds into self-join-free queries")
    if triplet is None:
        triplet = find_non_hierarchical_triplet(query)
    if triplet is None:
        raise ValueError(f"{query!r} is hierarchical; nothing to embed")
    triplet = normalize_triplet(triplet)
    source_query = select_source_query(triplet)
    for item in source_db.relation("S"):
        if source_db.is_endogenous(item):
            raise ValueError("the source instance must keep S exogenous")

    x, y = triplet.x, triplet.y
    embedded = Database()
    fact_map: dict[Fact, Fact] = {}

    for item in source_db.relation("R"):
        target = _image(triplet.atom_x, x, y, item.args[0], None)
        embedded.add(target, endogenous=source_db.is_endogenous(item))
        fact_map[item] = target
    for item in source_db.relation("T"):
        target = _image(triplet.atom_y, x, y, None, item.args[0])
        embedded.add(target, endogenous=source_db.is_endogenous(item))
        fact_map[item] = target
    for item in source_db.relation("S"):
        a, b = item.args
        for atom in query.atoms:
            if atom in (triplet.atom_x, triplet.atom_y):
                continue
            if atom.negated and atom != triplet.atom_xy:
                # Relations of other negative atoms stay empty.
                continue
            embedded.add_exogenous(_image(atom, x, y, a, b))
    return EmbeddedInstance(embedded, query, source_query, fact_map, triplet)

"""Counting independent sets via Shapley values (Lemma B.3).

The hardness proof for ``qRS¬T() :- R(x), S(x, y), ¬T(y)`` reduces counting
independent sets in a bipartite graph to ``N + 2`` Shapley computations
whose results feed an exactly solvable linear system.  This module makes
that reduction executable:

1. :func:`closure_counts` and :func:`independent_set_count` compute the
   ground truth ``|S(g, k)|`` / ``|IS(g)|`` by enumeration (and verify the
   bijection ``|S(g)| = |IS(g)|`` of the proof);
2. :func:`instance_d0` / :func:`instance_dr` build the databases
   ``D^0, D^1, ..., D^{N+1}`` of the proof;
3. :func:`recover_independent_set_count` runs a Shapley oracle on them,
   assembles the linear system over ``|S(g, k)|``, solves it with exact
   Gaussian elimination, and returns ``|IS(g)|``.

Running this end-to-end on small graphs *executes* the FP^#P-hardness
proof: if the Shapley oracle is exact, the recovered count always matches
direct enumeration.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from fractions import Fraction
from math import comb, factorial
from typing import Callable, Sequence

from repro.core.database import Database
from repro.core.facts import Fact
from repro.core.query import ConjunctiveQuery
from repro.shapley.brute_force import shapley_brute_force
from repro.workloads.queries import q_rs_nt


@dataclass(frozen=True)
class BipartiteGraph:
    """A bipartite graph with left part ``A``, right part ``B``, edges ``A×B``."""

    left: tuple[str, ...]
    right: tuple[str, ...]
    edges: frozenset[tuple[str, str]]

    def __post_init__(self) -> None:
        left_set, right_set = set(self.left), set(self.right)
        if left_set & right_set:
            raise ValueError("left and right parts must be disjoint")
        for a, b in self.edges:
            if a not in left_set or b not in right_set:
                raise ValueError(f"edge ({a}, {b}) not between the parts")

    @property
    def size(self) -> int:
        return len(self.left) + len(self.right)

    def has_isolated_vertex(self) -> bool:
        touched_left = {a for a, _ in self.edges}
        touched_right = {b for _, b in self.edges}
        return bool(set(self.left) - touched_left) or bool(
            set(self.right) - touched_right
        )

    def neighbors_of_left(self, a: str) -> frozenset[str]:
        return frozenset(b for aa, b in self.edges if aa == a)


def random_bipartite_graph(
    num_left: int,
    num_right: int,
    edge_probability: float = 0.5,
    rng: random.Random | None = None,
) -> BipartiteGraph:
    """A random bipartite graph without isolated vertices (proof premise)."""
    rng = rng or random.Random()
    left = tuple(f"a{i}" for i in range(num_left))
    right = tuple(f"b{j}" for j in range(num_right))
    edges = {
        (a, b) for a in left for b in right if rng.random() < edge_probability
    }
    # Patch isolated vertices with one incident edge each.
    for a in left:
        if not any(edge[0] == a for edge in edges):
            edges.add((a, rng.choice(right)))
    for b in right:
        if not any(edge[1] == b for edge in edges):
            edges.add((rng.choice(left), b))
    return BipartiteGraph(left, right, frozenset(edges))


# ----------------------------------------------------------------------
# Ground truth by enumeration
# ----------------------------------------------------------------------
def independent_set_count(graph: BipartiteGraph) -> int:
    """``|IS(g)|`` — number of independent vertex subsets, by enumeration."""
    vertices = list(graph.left) + list(graph.right)
    count = 0
    for size in range(len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            chosen = set(subset)
            if all(
                not (a in chosen and b in chosen) for a, b in graph.edges
            ):
                count += 1
    return count


def closure_counts(graph: BipartiteGraph) -> list[int]:
    """``|S(g, k)|`` for all k: subsets closed under left-to-right neighbors.

    ``S(g)`` contains ``A' ∪ B'`` with the property that every neighbor of
    a chosen left vertex is chosen; the proof's bijection gives
    ``Σ_k |S(g, k)| = |IS(g)|``.
    """
    vertices = list(graph.left) + list(graph.right)
    left_set = set(graph.left)
    counts = [0] * (len(vertices) + 1)
    for size in range(len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            chosen = set(subset)
            if all(
                b in chosen
                for a, b in graph.edges
                if a in chosen and a in left_set
            ):
                counts[size] += 1
    return counts


# ----------------------------------------------------------------------
# Databases of the reduction
# ----------------------------------------------------------------------
def instance_d0(graph: BipartiteGraph) -> tuple[Database, Fact]:
    """``D^0`` of Lemma B.3 and the target fact ``T(0)``."""
    db = Database()
    target = Fact("T", ("0",))
    for a in graph.left:
        db.add_endogenous(Fact("R", (a,)))
        db.add_exogenous(Fact("S", (a, "0")))
    for b in graph.right:
        db.add_endogenous(Fact("T", (b,)))
    for a, b in graph.edges:
        db.add_exogenous(Fact("S", (a, b)))
    db.add_endogenous(target)
    return db, target


def instance_dr(graph: BipartiteGraph, r: int) -> tuple[Database, Fact]:
    """``D^r`` of Lemma B.3: ``D^0`` minus the S(a,0) edges, plus ``r`` fresh
    left vertices ``0_i`` each wired to the new right vertex ``0``."""
    if r < 1:
        raise ValueError("r must be at least 1")
    db = Database()
    target = Fact("T", ("0",))
    for a in graph.left:
        db.add_endogenous(Fact("R", (a,)))
    for b in graph.right:
        db.add_endogenous(Fact("T", (b,)))
    for a, b in graph.edges:
        db.add_exogenous(Fact("S", (a, b)))
    db.add_endogenous(target)
    for i in range(1, r + 1):
        db.add_endogenous(Fact("R", (f"0_{i}",)))
        db.add_exogenous(Fact("S", (f"0_{i}", "0")))
    return db, target


ShapleyOracle = Callable[[Database, ConjunctiveQuery, Fact], Fraction]


def _magnitude(value: Fraction) -> Fraction:
    """The proof works with ``1 - (P00 + P11)/(N+1)!`` = |Shapley| (value ≤ 0)."""
    return -value


def recover_independent_set_count(
    graph: BipartiteGraph,
    oracle: ShapleyOracle = shapley_brute_force,
) -> int:
    """``|IS(g)|`` recovered from Shapley values only (the Lemma B.3 pipeline)."""
    if graph.has_isolated_vertex():
        raise ValueError("the reduction requires a graph without isolated vertices")
    query = q_rs_nt()
    m = len(graph.left)
    n_total = graph.size

    db0, target0 = instance_d0(graph)
    shapley0 = _magnitude(oracle(db0, query, target0))
    perms0 = factorial(n_total + 1)
    p00 = Fraction(perms0, m + 1)
    p11 = (1 - shapley0) * perms0 - p00

    matrix: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    for r in range(1, n_total + 2):
        db_r, target_r = instance_dr(graph, r)
        shapley_r = _magnitude(oracle(db_r, query, target_r))
        m_r = comb(n_total + r + 1, r) * factorial(r)
        total_r = factorial(n_total + r + 1)
        rhs.append((1 - shapley_r) * total_r - p11 * m_r)
        matrix.append(
            [
                Fraction(factorial(k) * factorial(n_total - k + r))
                for k in range(n_total + 1)
            ]
        )
    solution = solve_linear_system(matrix, rhs)
    total = sum(solution)
    if total.denominator != 1:
        raise ArithmeticError(f"non-integral |S(g)| recovered: {total}")
    return int(total)


def solve_linear_system(
    matrix: Sequence[Sequence[Fraction]], rhs: Sequence[Fraction]
) -> list[Fraction]:
    """Exact Gaussian elimination with partial (nonzero) pivoting."""
    size = len(matrix)
    if any(len(row) != size for row in matrix) or len(rhs) != size:
        raise ValueError("the system must be square")
    augmented = [list(map(Fraction, row)) + [Fraction(value)]
                 for row, value in zip(matrix, rhs)]
    for column in range(size):
        pivot_row = next(
            (row for row in range(column, size) if augmented[row][column] != 0),
            None,
        )
        if pivot_row is None:
            raise ArithmeticError("singular system (the proof guarantees otherwise)")
        augmented[column], augmented[pivot_row] = (
            augmented[pivot_row],
            augmented[column],
        )
        pivot = augmented[column][column]
        augmented[column] = [entry / pivot for entry in augmented[column]]
        for row in range(size):
            if row != column and augmented[row][column] != 0:
                factor = augmented[row][column]
                augmented[row] = [
                    entry - factor * lead
                    for entry, lead in zip(augmented[row], augmented[column])
                ]
    return [augmented[row][size] for row in range(size)]

"""Comparing fact-attribution measures (the paper's Section 1 discussion).

The paper positions the Shapley value against causal responsibility
(Meliou et al. 2010) and the causal effect (Salimi et al. 2016).  This
example computes all three — plus the Banzhaf value, which provably
equals the causal effect — on the running example, and shows where the
rankings agree and where they differ.

Run:  python examples/attribution_compare.py
"""

from __future__ import annotations

from repro.attribution import all_causal_effects, all_responsibilities
from repro.shapley.banzhaf import banzhaf_value
from repro.shapley.exact import shapley_all_values
from repro.workloads.running_example import figure_1_database, query_q1


def main() -> None:
    db = figure_1_database()
    q1 = query_q1()
    print(f"query: {q1!r}")
    print()

    shapley = shapley_all_values(db, q1)
    resp = all_responsibilities(db, q1)
    effect = all_causal_effects(db, q1)
    banzhaf = {f: banzhaf_value(db, q1, f) for f in db.endogenous}

    print(f"{'fact':26} {'Shapley':>9} {'responsib.':>10} {'causal eff.':>11} {'Banzhaf':>9}")
    for f in sorted(shapley, key=repr):
        print(
            f"{f!r:26} {shapley[f]!s:>9} {resp[f].responsibility!s:>10}"
            f" {effect[f]!s:>11} {banzhaf[f]!s:>9}"
        )
    print()

    # Identity 1: causal effect == Banzhaf value of the query game.
    identical = all(effect[f] == banzhaf[f] for f in shapley)
    print(f"causal effect == Banzhaf on every fact: {identical}")

    # Identity 2: zero sets coincide (q1 is polarity consistent, so
    # relevance, nonzero Shapley, nonzero responsibility all align).
    zero_sets_match = all(
        (shapley[f] == 0) == (resp[f].responsibility == 0) == (effect[f] == 0)
        for f in shapley
    )
    print(f"all measures share the same null players: {zero_sets_match}")
    print()

    # Where the rankings differ: responsibility is coarser (only the
    # minimal contingency size matters), so it cannot separate TA(Adam)
    # from TA(Ben) — the Shapley value can.
    adam, ben = (f for f in sorted(shapley, key=repr) if f.relation == "TA"
                 and f.args[0] in ("Adam", "Ben"))
    print("discrimination example:")
    print(
        f"  responsibility: {adam!r} = {resp[adam].responsibility},"
        f" {ben!r} = {resp[ben].responsibility}  (tied)"
    )
    print(
        f"  Shapley:        {adam!r} = {shapley[adam]},"
        f" {ben!r} = {shapley[ben]}  (Adam matters more)"
    )


if __name__ == "__main__":
    main()

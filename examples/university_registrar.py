"""The paper's running example, end to end (Figure 1, Examples 2.2-2.3).

Loads the university database, evaluates queries q1-q4, reproduces the
exact Shapley values of Example 2.3, and shows how the exogenous
relations of Section 4 rescue the non-hierarchical query q2.

Run:  python examples/university_registrar.py
"""

from __future__ import annotations

from repro import classify, holds, shapley_value
from repro.shapley.brute_force import shapley_all_brute_force
from repro.shapley.exact import shapley_all_values
from repro.workloads.running_example import (
    EXAMPLE_2_3_SHAPLEY,
    figure_1_database,
    query_q1,
    query_q2,
    query_q3,
    query_q4,
)


def main() -> None:
    db = figure_1_database()
    print(f"database: {db!r}")
    print()

    # --- Example 2.2: the four queries and their structure -------------
    print("Example 2.2 query classification:")
    for q in (query_q1(), query_q2(), query_q3(), query_q4()):
        verdict = classify(q)
        satisfied = "satisfied" if holds(q, db) else "not satisfied"
        print(f"  {q!r}")
        print(f"      {verdict.complexity.value}; {satisfied} on the full database")
    print()

    # --- Example 2.3: exact Shapley values under q1 --------------------
    q1 = query_q1()
    values = shapley_all_values(db, q1)
    print("Example 2.3 Shapley values under q1 (polynomial algorithm):")
    print(f"  {'fact':26} {'value':>8}  {'paper':>8}")
    for f in sorted(values, key=repr):
        print(
            f"  {f!r:26} {values[f]!s:>8}  {EXAMPLE_2_3_SHAPLEY[f]!s:>8}"
            f"  {'✓' if values[f] == EXAMPLE_2_3_SHAPLEY[f] else '✗'}"
        )
    print(f"  sum = {sum(values.values())} (efficiency axiom)")
    print()

    # Interpretation, as in the paper: Adam's TA-ship hurts the query more
    # than Ben's because Adam registers for more courses.
    adam, ben = sorted(
        (f for f in values if f.relation == "TA" and f.args[0] != "David"),
        key=repr,
    )
    print(
        f"  |Shapley({adam!r})| > |Shapley({ben!r})|:"
        f" {abs(values[adam])} > {abs(values[ben])}"
    )
    print()

    # --- Section 4: q2 becomes tractable with exogenous Stud, Course ---
    q2 = query_q2()
    print("Section 4: q2 with exogenous relations X = {Stud, Course}:")
    verdict = classify(q2, {"Stud", "Course"})
    print(f"  {verdict.complexity.value} — {verdict.reason}")
    q2_values = {
        f: shapley_value(db, q2, f, exogenous_relations={"Stud", "Course"})
        for f in sorted(db.endogenous, key=repr)
    }
    reference = shapley_all_brute_force(db, q2)
    agree = all(q2_values[f] == reference[f] for f in q2_values)
    print(f"  ExoShap values match the brute-force oracle: {agree}")
    top = max(q2_values, key=lambda f: abs(q2_values[f]))
    print(f"  most influential fact for q2: {top!r} ({q2_values[top]})")


if __name__ == "__main__":
    main()

"""Approximation under negation: the Section 5 story as a script.

Shows (1) the additive Monte-Carlo estimator converging on the running
example, and (2) the same estimator failing to resolve the exponentially
small — but provably nonzero — Shapley value of the Theorem 5.1 gap
family, which is why no multiplicative FPRAS falls out of sampling once
negation enters the query.

Run:  python examples/approximation_study.py
"""

from __future__ import annotations

import random

from repro import fact
from repro.reductions.gap import expected_gap_value, gap_instance
from repro.shapley.approximate import (
    approximate_shapley,
    hoeffding_sample_count,
    multiplicative_sample_lower_bound,
)
from repro.shapley.exact import shapley_hierarchical
from repro.workloads.running_example import figure_1_database, query_q1


def main() -> None:
    # --- Part 1: additive convergence on a well-behaved instance -------
    db = figure_1_database()
    q1 = query_q1()
    target = fact("TA", "Adam")
    exact = shapley_hierarchical(db, q1, target)
    print(f"part 1 — running example, f = {target!r}, exact = {exact}")
    print(f"  {'samples':>8} {'estimate':>10} {'|error|':>9}")
    for samples in (50, 200, 800, 3200):
        estimate = approximate_shapley(
            db, q1, target, samples=samples, rng=random.Random(samples)
        )
        error = abs(float(estimate.value - exact))
        print(f"  {samples:>8} {float(estimate.value):>+10.4f} {error:>9.4f}")
    budget = hoeffding_sample_count(0.05, 0.05)
    print(f"  (Hoeffding budget for ε=0.05, δ=0.05: {budget} samples)")
    print()

    # --- Part 2: the gap family defeats additive sampling --------------
    print("part 2 — gap family for q() :- R(x), S(x, y), ¬R(y)")
    print(f"  {'n':>3} {'exact value':>14} {'estimate@2000':>14} {'samples to resolve':>19}")
    for n in (1, 2, 3, 4):
        inst = gap_instance(n)
        estimate = approximate_shapley(
            inst.database, inst.query, inst.target,
            samples=2000, rng=random.Random(n),
        )
        needed = multiplicative_sample_lower_bound(inst.expected_value)
        print(
            f"  {n:>3} {float(inst.expected_value):>14.3e}"
            f" {float(estimate.value):>14.3e} {needed:>19.2e}"
        )
    print()
    print("  closed form n!·n!/(2n+1)! keeps shrinking exponentially:")
    for n in (8, 16, 32):
        print(f"    n = {n:>3}: {float(expected_gap_value(n)):.3e}")
    print()
    print(
        "  conclusion: the additive FPRAS stays an additive FPRAS — the\n"
        "  value is nonzero yet no polynomial sample budget certifies it,\n"
        "  exactly the gap-property failure of Theorem 5.1."
    )


if __name__ == "__main__":
    main()

"""Probabilistic databases with deterministic reference data (Theorem 4.10).

A data-cleaning scenario: extraction produced uncertain ``TA`` and ``Reg``
records (each with a confidence), while ``Stud`` and ``Course`` come from
the registrar and are certain.  The Section 4.3 result lets us evaluate a
query that Fink-Olteanu's dichotomy alone calls FP^#P-complete — because
the deterministic relations break every non-hierarchical path.

Run:  python examples/probabilistic_cleaning.py
"""

from __future__ import annotations

from fractions import Fraction

from repro.probabilistic.deterministic import (
    infer_deterministic_relations,
    query_probability_with_deterministic,
)
from repro.probabilistic.lifted import query_probability_lifted
from repro.probabilistic.tid import TupleIndependentDatabase
from repro.probabilistic.worlds import query_probability_by_worlds
from repro.workloads.running_example import figure_1_database, query_q1, query_q2


def main() -> None:
    # Confidence-annotated version of the Figure 1 database.
    base = figure_1_database()
    tid = TupleIndependentDatabase()
    confidences = [
        Fraction(9, 10), Fraction(3, 4), Fraction(1, 2), Fraction(2, 3),
        Fraction(4, 5), Fraction(1, 4), Fraction(7, 10), Fraction(3, 5),
    ]
    for item in sorted(base.exogenous, key=repr):
        tid.add_deterministic(item)
    for confidence, item in zip(confidences, sorted(base.endogenous, key=repr)):
        tid.add(item, confidence)
    print(f"database: {tid!r}")
    print()

    # --- q1 is hierarchical: plain lifted inference works --------------
    q1 = query_q1()
    lifted = query_probability_lifted(tid, q1)
    worlds = query_probability_by_worlds(tid, q1)
    print(f"q1: {q1!r}")
    print(f"  P(q1) lifted         = {lifted} ({float(lifted):.6f})")
    print(f"  P(q1) by 2^8 worlds  = {worlds} (agrees: {lifted == worlds})")
    print()

    # --- q2 is non-hierarchical: Theorem 4.10 rescues it ---------------
    q2 = query_q2()
    deterministic = infer_deterministic_relations(tid, q2)
    print(f"q2: {q2!r}")
    print(f"  deterministic relations inferred: {sorted(deterministic)}")
    rescued = query_probability_with_deterministic(tid, q2, deterministic)
    reference = query_probability_by_worlds(tid, q2)
    print(f"  P(q2) via Theorem 4.10 rewrite = {rescued} ({float(rescued):.6f})")
    print(f"  P(q2) by world enumeration     = {reference} (agrees: {rescued == reference})")
    print()

    # --- A cleaning decision: which uncertain record matters most? -----
    # Flip each uncertain fact to certain and watch P(q1) move — the
    # probabilistic analogue of a contribution measure.
    print("sensitivity of P(q1) to certifying one record:")
    for item in sorted(tid.uncertain_facts, key=repr):
        boosted = TupleIndependentDatabase()
        for other, probability in tid.items():
            boosted.add(other, Fraction(1) if other == item else probability)
        delta = query_probability_lifted(boosted, q1) - lifted
        print(f"  certify {item!r:26} ΔP = {float(delta):+.6f}")


if __name__ == "__main__":
    main()

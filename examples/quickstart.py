"""Quickstart: Shapley values of database facts in five minutes.

Builds a tiny course-registration database, asks a Boolean query with
negation, and attributes the answer to the endogenous facts — exactly,
approximately, and with the dichotomy classifier explaining which
algorithm applies.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    Database,
    classify,
    fact,
    parse_query,
    shapley_value,
)
from repro.shapley.approximate import approximate_shapley


def main() -> None:
    # 1. A database: exogenous facts are fixed context, endogenous facts
    #    are the "players" whose contribution we want to measure.
    db = Database(
        exogenous=[
            fact("Stud", "ann"),
            fact("Stud", "bob"),
        ],
        endogenous=[
            fact("Reg", "ann", "databases"),
            fact("Reg", "bob", "databases"),
            fact("TA", "ann"),
        ],
    )

    # 2. A Boolean conjunctive query with (safe) negation: is some student
    #    registered to a course they do not TA-assist... er, while not
    #    being a TA at all?
    q = parse_query("q() :- Stud(x), not TA(x), Reg(x, y)")

    # 3. Where does the query sit in the complexity dichotomy?
    verdict = classify(q)
    print(f"query:  {q}")
    print(f"class:  {verdict.complexity.value} — {verdict.reason}")
    print()

    # 4. Exact Shapley values (polynomial algorithm — q is hierarchical).
    print("exact Shapley values:")
    for f in sorted(db.endogenous, key=repr):
        value = shapley_value(db, q, f)
        print(f"  {f!r:28} {value!s:>8}   ({float(value):+.4f})")
    print()

    # 5. The same values, approximated by permutation sampling with an
    #    additive (epsilon, delta) guarantee.
    target = fact("TA", "ann")
    estimate = approximate_shapley(
        db, q, target, epsilon=0.1, delta=0.05, rng=random.Random(0)
    )
    print(
        f"sampled Shapley of {target!r}: {float(estimate.value):+.4f}"
        f" ({estimate.samples} samples, ±{estimate.epsilon} additive)"
    )


if __name__ == "__main__":
    main()

"""The introduction's trade-audit scenario: query (1) with aggregates.

"Is there a farmer exporting a product to a country where it does not
grow?" — with the ``Grows`` relation exogenous (reference data) and
``Farmer`` / ``Export`` endogenous (auditable records).  The example
ranks records by Shapley value, then attributes the paper's Count
aggregate over the same pattern.

Run:  python examples/exports_audit.py
"""

from __future__ import annotations

import random

from repro import classify, holds, parse_query, shapley_value
from repro.shapley.aggregates import shapley_count
from repro.workloads.generators import export_database
from repro.workloads.queries import intro_export_query


def main() -> None:
    rng = random.Random(2020)
    db = export_database(
        num_farmers=2, num_products=2, num_countries=2,
        export_probability=0.5, grows_probability=0.5, rng=rng,
    )
    q = intro_export_query()

    print(f"query (1): {q!r}")
    print(f"database:  {db!r}")
    print(f"satisfied: {holds(q, db)}")
    print()

    # The dichotomy: hard in general, tractable once Grows is exogenous.
    print("classification:")
    print(f"  X = {{}}:        {classify(q).complexity.value}")
    print(f"  X = {{Grows}}:   {classify(q, {'Grows'}).complexity.value}")
    print()

    # Rank the audit records by their (exact) responsibility for the alert.
    print("Shapley ranking of audit records (ExoShap route):")
    ranked = sorted(
        (
            (shapley_value(db, q, f, exogenous_relations={"Grows"}), f)
            for f in db.endogenous
        ),
        key=lambda pair: (-pair[0], repr(pair[1])),
    )
    for value, f in ranked:
        bar = "#" * int(float(value) * 40)
        print(f"  {f!r:30} {float(value):+.4f}  {bar}")
    print()

    # The aggregate view of the same pattern: how much does each record
    # contribute to the *count* of suspicious (product, country) pairs?
    count_query = parse_query(
        "suspicious(p, c) :- Farmer(m), Export(m, p, c), not Grows(c, p)"
    )
    print("contribution to Count{(p, c) | farmer exports p to c, p not grown}:")
    for f in sorted(db.endogenous, key=repr):
        value = shapley_count(db, count_query, f, exogenous_relations={"Grows"})
        print(f"  {f!r:30} {float(value):+.4f}")


if __name__ == "__main__":
    main()

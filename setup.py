"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, so
``pip install -e .`` must use the legacy ``setup.py develop`` code path;
all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
